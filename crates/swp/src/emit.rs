//! Code generation: from structured IR to VLIW object code.
//!
//! Innermost loops whose bodies contain only operations and (reduced)
//! conditionals are software pipelined; loops containing nested loops are
//! emitted structurally. The emitter implements the paper's §2.4
//! code-size scheme for unknown trip counts: a guarded unpipelined copy of
//! the loop executes `n` iterations when `n < k` (the pipeline cannot
//! fill) and `(n - k) mod u` iterations otherwise, with the remaining
//! iterations on the pipelined loop.
//!
//! ## Iteration bookkeeping
//!
//! With initiation interval `s`, schedule length `L`, stage count
//! `m = ceil(L / s)` and `k = m - 1`, a fully pipelined execution of `n'`
//! iterations (where `n' ≡ k (mod u)`) is partitioned as:
//!
//! * **prolog** — cycles `[0, k*s)`: iteration `it` issues node `x` at
//!   `it*s + time(x)` whenever that lands below `k*s`;
//! * **kernel** — `u*s` cycles repeated `(n' - k)/u` times; at kernel
//!   offset `a*s + b`, nodes with `time(x) mod s == b` execute for local
//!   iteration `k - stage(x) + a` (mod `u`, which is all the renaming
//!   needs, since every variable's copy count divides `u`);
//! * **epilog** — cycles `[n'*s, (n'-1)*s + L)`: drains the last `k`
//!   iterations.
//!
//! All three streams are compile-time constants; only the two loop
//! counters (`(n-k) mod u` and `(n-k) div u`) depend on `n`.
//!
//! ## Conditionals inside pipelined loops
//!
//! A reduced conditional instance occupies `[c, c + len)`; the scheduler
//! guarantees (via the no-wrap placement rule) that this span stays inside
//! one `s`-aligned window, hence entirely inside one region. Emission
//! splits the region's word stream at `c`: the block ends with a
//! conditional branch on the (renamed) condition register, both arms carry
//! the construct's own operations *plus* every operation scheduled in
//! parallel with it (duplicated, per §3.1), and control rejoins after
//! `len` cycles. Nested conditionals split the arm blocks recursively.

use ir::{Imm, Op, Opcode, Operand, Program, RegTable, Stmt, TripCount, Type, VReg};
use machine::{MachineDescription, RegClass};

use crate::build::{build_item_graph, BuildOptions};
use crate::code::{Block, BlockId, Terminator, VliwProgram, Word};
use crate::compact::{compact_block, CompactedRegion};
use crate::graph::{Access, DepGraph, Node, NodeKind, ReducedCond};
use crate::hier::{reduce_stmts_with, stats, CondMode};
use crate::mii::{rec_mii, res_mii, MiiReport};
use crate::modsched::{modulo_schedule_analyzed, SchedAnalysis, SchedOptions, SchedScratch};
use crate::mve::{expand, Expansion, UnrollPolicy};
use crate::schedule::Schedule;
use crate::stats::{DepEdgeSummary, LoopStats};
use std::time::Instant;

/// Compiler options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Attempt software pipelining at all (false = the Figure 4-2
    /// baseline: local compaction only).
    pub pipeline: bool,
    /// Dependence-graph construction options for pipelined loop bodies
    /// (most notably [`BuildOptions::prune_dominated`], which deletes
    /// transitively-implied edges before scheduling). Basic-block
    /// compaction always uses its own intra-iteration settings.
    pub build: BuildOptions,
    /// Modulo-scheduler options.
    pub sched: SchedOptions,
    /// Kernel unroll policy for modulo variable expansion.
    pub unroll_policy: UnrollPolicy,
    /// Do not attempt to pipeline bodies longer than this many operations
    /// (the paper's scheduler skipped Livermore kernel 22's 331-instruction
    /// loop on such a threshold).
    pub body_len_threshold: u32,
    /// Skip pipelining when the MII is at least this fraction of the
    /// unpipelined iteration length (the paper's 99% rule, which excluded
    /// Livermore kernels 16 and 20).
    pub near_bound_fraction: f64,
    /// Fall back to the unpipelined loop when the rotating-register
    /// allocation exceeds the machine's register files.
    pub respect_reg_files: bool,
    /// Reduce conditionals inside innermost loops so those loops can be
    /// pipelined (hierarchical reduction, Part II of the paper).
    pub hierarchical: bool,
    /// How reduced conditionals advertise resources (§3.1): union of the
    /// arms (default) or fully exclusive.
    pub cond_mode: CondMode,
    /// Overlap the scalar code following a pipelined loop with the loop's
    /// epilog (hierarchical reduction's third benefit: "the prolog and
    /// epilog of a loop can be overlapped with other operations outside
    /// the loop", diminishing the penalty of short loops).
    pub fuse_epilog: bool,
    /// Feedback-guided iterative rescheduling ([`crate::refine`]): when
    /// the achieved interval exceeds the MII, retry with a deterministic,
    /// budgeted menu of perturbations keyed off the loop's own scheduler
    /// diagnostics, keeping the best verified schedule. Never regresses:
    /// an improvement is accepted only when strictly below the baseline
    /// interval and valid, and the baseline ships when the improved
    /// schedule fails a downstream (trip-count or register-file) check.
    pub refine: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            pipeline: true,
            build: BuildOptions::default(),
            sched: SchedOptions::default(),
            unroll_policy: UnrollPolicy::default(),
            body_len_threshold: 331,
            near_bound_fraction: 0.99,
            respect_reg_files: true,
            hierarchical: true,
            cond_mode: CondMode::default(),
            fuse_epilog: true,
            refine: false,
        }
    }
}

/// Why a loop was not software pipelined.
#[derive(Debug, Clone, PartialEq)]
pub enum NotPipelined {
    /// Pipelining disabled by options.
    Disabled,
    /// The body contains nested loops (or conditionals with hierarchical
    /// reduction disabled).
    ControlFlow,
    /// Body exceeds the instruction-count threshold.
    BodyTooLong {
        /// Operations in the body.
        ops: usize,
        /// The configured threshold.
        threshold: u32,
    },
    /// The MII is within the configured fraction of the unpipelined
    /// length; pipelining cannot pay.
    NearBound {
        /// Lower bound on the interval.
        mii: u32,
        /// Unpipelined iteration length.
        unpipelined: u32,
    },
    /// Compile-time trip count too small to fill the pipeline.
    TripTooSmall {
        /// The trip count.
        trip: u32,
        /// Iterations needed to reach steady state.
        needed: u32,
    },
    /// The rotating-register allocation would overflow a register file.
    Registers {
        /// The class that overflowed.
        class: RegClass,
        /// Registers required.
        required: u32,
        /// File size.
        available: u32,
    },
    /// A schedule was found but its achieved interval is no better than
    /// the unpipelined loop; pipelining would only add overhead.
    NotProfitable {
        /// Achieved initiation interval.
        ii: u32,
        /// Unpipelined iteration length.
        unpipelined: u32,
    },
    /// The interval search failed outright.
    SearchFailed(String),
}

/// Per-loop compilation report (feeds every table in the evaluation).
#[derive(Debug, Clone, Default)]
pub struct LoopReport {
    /// Emitter-assigned label, e.g. `"loop2"`.
    pub label: String,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Operations in the loop body (including conditional arms).
    pub num_ops: usize,
    /// Whether the body contains conditionals.
    pub has_conditional: bool,
    /// Whether the dependence graph has a nontrivial SCC (recurrence).
    pub has_recurrence: bool,
    /// Resource-constrained lower bound.
    pub mii_res: u32,
    /// Recurrence-constrained lower bound.
    pub mii_rec: u32,
    /// Achieved initiation interval, if pipelined.
    pub ii: Option<u32>,
    /// Why not, if not.
    pub not_pipelined: Option<NotPipelined>,
    /// Kernel unroll degree (modulo variable expansion).
    pub unroll: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Unpipelined (locally compacted, drained) iteration length.
    pub unpipelined_len: u32,
    /// Instruction words emitted for this loop (all regions).
    pub code_words: u32,
    /// Instruction words of the unpipelined loop alone.
    pub unpipelined_words: u32,
    /// Scheduler telemetry and phase timings (see [`crate::stats`]).
    pub stats: LoopStats,
}

impl LoopReport {
    /// The combined MII.
    pub fn mii(&self) -> u32 {
        self.mii_res.max(self.mii_rec).max(1)
    }

    /// True if pipelined at exactly the lower bound.
    pub fn optimal(&self) -> bool {
        self.ii == Some(self.mii())
    }

    /// Efficiency lower bound (Table 4-2's third column): MII / achieved
    /// interval; 1.0 when optimal. Unpipelined loops report
    /// `mii / unpipelined_len`.
    pub fn efficiency(&self) -> f64 {
        match self.ii {
            Some(ii) => self.mii() as f64 / ii as f64,
            None => self.mii() as f64 / self.unpipelined_len.max(1) as f64,
        }
    }
}

/// Scheduling artifacts retained for one *pipelined* loop so that the
/// static legality verifier ([`crate::verify`]) can independently re-check
/// the schedule against the dependence graph it was produced for — the
/// emitter's own bookkeeping is never trusted.
#[derive(Debug, Clone)]
pub struct LoopArtifacts {
    /// The loop's label (matches [`LoopReport::label`] and the emitted
    /// block labels `<label>.kernel`, `<label>.epilog`, …).
    pub label: String,
    /// The dependence graph the schedule was produced for.
    pub graph: DepGraph,
    /// The achieved modulo schedule.
    pub schedule: Schedule,
    /// The rotating-register assignment (modulo variable expansion).
    pub expansion: Expansion,
}

/// A compiled program plus per-loop reports.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The object code.
    pub vliw: VliwProgram,
    /// One report per loop, innermost-first within each nest.
    pub reports: Vec<LoopReport>,
    /// Scheduling artifacts, one entry per *pipelined* loop (loops that
    /// fell back to unpipelined code leave no artifacts). Consumed by
    /// [`crate::verify::verify_compiled`].
    pub artifacts: Vec<LoopArtifacts>,
    /// Whole-program register pressure (maximum simultaneously-live
    /// registers per class, checked against the machine's file sizes) —
    /// [`crate::pressure::register_pressure`] over the emitted object
    /// code. Surfaced per job in the batch report and failed on by the
    /// `lint` binary when [`PressureReport::fits`] is false.
    ///
    /// [`PressureReport::fits`]: crate::pressure::PressureReport::fits
    pub pressure: crate::pressure::PressureReport,
}

/// Compilation errors (malformed input).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a program.
///
/// # Errors
///
/// Returns [`CompileError`] if the program fails validation.
pub fn compile(
    p: &Program,
    mach: &MachineDescription,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    compile_with_scratch(p, mach, opts, &mut SchedScratch::new())
}

/// [`compile`] with a caller-owned scheduler scratch arena, so a sequence
/// of compilations (one batch worker thread's job stream) reuses the
/// scheduler's buffers instead of reallocating them per program. Results
/// are identical to [`compile`] — the scratch never leaks state between
/// runs.
///
/// # Errors
///
/// Returns [`CompileError`] if the program fails validation.
pub fn compile_with_scratch(
    p: &Program,
    mach: &MachineDescription,
    opts: &CompileOptions,
    scratch: &mut SchedScratch,
) -> Result<CompiledProgram, CompileError> {
    p.validate().map_err(|e| CompileError(e.to_string()))?;
    let facts = opts
        .build
        .absint_refute
        .then(|| crate::absint::resolve_facts(p));
    let mut e = Emitter {
        mach,
        opts: *opts,
        regs: p.regs.clone(),
        blocks: vec![Block::new("entry")],
        reports: Vec::new(),
        artifacts: Vec::new(),
        next_loop: 0,
        facts,
        scratch,
    };
    e.emit_stmts(&p.body, 0);
    let last = e.blocks.len() - 1;
    e.blocks[last].term = Terminator::Halt;
    let vliw = VliwProgram {
        name: p.name.clone(),
        regs: e.regs,
        arrays: p.arrays.clone(),
        mem_size: p.mem_size,
        blocks: e.blocks,
        entry: BlockId(0),
    };
    let pressure = crate::pressure::register_pressure(&vliw, mach);
    Ok(CompiledProgram {
        vliw,
        reports: e.reports,
        artifacts: e.artifacts,
        pressure,
    })
}

/// How the unpipelined version of a loop is emitted.
enum Fallback {
    /// A single compacted, drained block (straight-line bodies).
    Compact(CompactedRegion),
    /// Structural emission (bodies with conditionals).
    Structured,
}

struct Emitter<'m> {
    mach: &'m MachineDescription,
    opts: CompileOptions,
    regs: RegTable,
    blocks: Vec<Block>,
    reports: Vec<LoopReport>,
    artifacts: Vec<LoopArtifacts>,
    next_loop: u32,
    /// Per-loop constant-propagation facts, resolved once per program.
    /// `Some` only under [`crate::BuildOptions::absint_refute`]; indexed by
    /// the same pre-order numbering as `next_loop`.
    facts: Option<crate::absint::ProgramFacts>,
    /// Reusable scheduler buffers, threaded through every loop's II search.
    scratch: &'m mut SchedScratch,
}

impl<'m> Emitter<'m> {
    fn cur(&mut self) -> &mut Block {
        self.blocks.last_mut().expect("emitter always has a block")
    }

    fn cur_id(&self) -> BlockId {
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Seals the current block with `term` and opens a new one.
    fn seal_and_open(&mut self, term: Terminator, label: impl Into<String>) -> BlockId {
        self.cur().term = term;
        self.blocks.push(Block::new(label));
        self.cur_id()
    }

    /// Opens a new block, falling through from the current one.
    fn open_fallthrough(&mut self, label: impl Into<String>) -> BlockId {
        let next = BlockId(self.blocks.len() as u32);
        self.seal_and_open(Terminator::Fall(next), label)
    }

    /// Appends a fully drained straight-line region to the current block.
    fn append_region(&mut self, region: CompactedRegion) {
        let words = region.into_padded_words();
        self.cur().words.extend(words);
    }

    /// Appends ops as one compacted, drained region.
    fn append_ops(&mut self, ops: &[Op]) {
        if ops.is_empty() {
            return;
        }
        let region = compact_block(ops, self.mach);
        self.append_region(region);
    }

    fn alloc_reg(&mut self, ty: Type, name: String) -> VReg {
        self.regs.alloc_named(ty, name)
    }

    fn total_words(&self) -> usize {
        self.blocks.iter().map(|b| b.words.len()).sum()
    }

    fn emit_stmts(&mut self, stmts: &[Stmt], depth: u32) {
        let mut run: Vec<Op> = Vec::new();
        let mut i = 0;
        while i < stmts.len() {
            match &stmts[i] {
                Stmt::Op(op) => {
                    run.push(op.clone());
                    i += 1;
                }
                Stmt::Loop(l) => {
                    let pre = std::mem::take(&mut run);
                    self.append_ops(&pre);
                    // Offer the scalar run that follows the loop for
                    // epilog fusion.
                    let mut tail: Vec<Op> = Vec::new();
                    let mut j = i + 1;
                    while let Some(Stmt::Op(op)) = stmts.get(j) {
                        tail.push(op.clone());
                        j += 1;
                    }
                    let consumed = self.emit_loop(l, depth, &tail);
                    i = if consumed { j } else { i + 1 };
                }
                Stmt::If(c) => {
                    let pre = std::mem::take(&mut run);
                    self.append_ops(&pre);
                    self.emit_if(c, depth);
                    i += 1;
                }
            }
        }
        self.append_ops(&run);
    }

    fn emit_if(&mut self, i: &ir::IfStmt, depth: u32) {
        // The preceding region is drained, so the condition is committed.
        let then_entry = BlockId(self.blocks.len() as u32);
        self.cur().term = Terminator::CondJump {
            cond: i.cond,
            nonzero: then_entry,
            zero: BlockId(0), // patched below
        };
        let cond_block = self.cur_id();
        self.blocks.push(Block::new("if.then"));
        self.emit_stmts(&i.then_body, depth);
        let then_exit = self.cur_id();
        let else_entry = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new("if.else"));
        self.emit_stmts(&i.else_body, depth);
        let else_exit = self.cur_id();
        let join = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new("if.join"));
        self.blocks[then_exit.index()].term = Terminator::Jump(join);
        self.blocks[else_exit.index()].term = Terminator::Fall(join);
        if let Terminator::CondJump { zero, .. } = &mut self.blocks[cond_block.index()].term {
            *zero = else_entry;
        }
    }

    /// Emits one loop. `tail` is the scalar run that follows the loop in
    /// its block; returns true if it was *consumed* (fused into the
    /// loop's epilog) and must not be emitted again.
    fn emit_loop(&mut self, l: &ir::Loop, depth: u32, tail: &[Op]) -> bool {
        let loop_idx = self.next_loop;
        let label = format!("loop{}", self.next_loop);
        self.next_loop += 1;
        if matches!(l.trip, TripCount::Const(0)) {
            return false;
        }

        let all_ops = l.body.iter().all(|s| matches!(s, Stmt::Op(_)));
        let reduce_start = Instant::now();
        let items = if all_ops || self.opts.hierarchical {
            reduce_stmts_with(&l.body, self.mach, self.opts.cond_mode)
        } else {
            None
        };
        let reduce_time = reduce_start.elapsed();
        let Some(items) = items else {
            // Nested loops (or hierarchy disabled): structural emission.
            self.emit_structured_loop(l, depth, &label);
            self.reports.push(LoopReport {
                label,
                depth,
                num_ops: l.body.len(),
                has_conditional: l.body.iter().any(|s| matches!(s, Stmt::If(_))),
                has_recurrence: false,
                mii_res: 0,
                mii_rec: 0,
                ii: None,
                not_pipelined: Some(NotPipelined::ControlFlow),
                unroll: 1,
                stages: 1,
                unpipelined_len: 0,
                code_words: 0,
                unpipelined_words: 0,
                stats: LoopStats::default(),
            });
            return false;
        };

        let has_conditional = stats::has_conditional(&items);
        let fallback = if all_ops {
            let ops: Vec<Op> = l
                .body
                .iter()
                .map(|s| match s {
                    Stmt::Op(op) => op.clone(),
                    _ => unreachable!("all_ops checked"),
                })
                .collect();
            Fallback::Compact(compact_block(&ops, self.mach))
        } else {
            Fallback::Structured
        };
        let unpip_len = match &fallback {
            Fallback::Compact(r) => r.drained_len(),
            Fallback::Structured => stats::unpipelined_len(&items, self.mach),
        };

        let mut report = LoopReport {
            label: label.clone(),
            depth,
            num_ops: stats::num_ops(&items),
            has_conditional,
            has_recurrence: false,
            mii_res: 0,
            mii_rec: 0,
            ii: None,
            not_pipelined: None,
            unroll: 1,
            stages: 1,
            unpipelined_len: unpip_len,
            code_words: 0,
            unpipelined_words: match &fallback {
                Fallback::Compact(r) => r.words.len() as u32 + r.tail,
                Fallback::Structured => unpip_len,
            },
            stats: LoopStats::default(),
        };
        report.stats.phases.reduce = reduce_time;
        report.stats.reduced_conds = stats::cond_count(&items);

        let plan = self.plan_pipeline(items, &l.trip, unpip_len, loop_idx, &mut report);
        let words_before = self.total_words();
        let emit_start = Instant::now();
        let consumed = match plan {
            Some(plan) => {
                self.artifacts.push(LoopArtifacts {
                    label: label.clone(),
                    graph: plan.g.clone(),
                    schedule: plan.sched.clone(),
                    expansion: plan.exp.clone(),
                });
                self.emit_pipelined(l, &fallback, plan, &label, tail)
            }
            None => {
                self.emit_fallback_loop(&l.body, l.trip, &fallback, depth, &label);
                false
            }
        };
        report.stats.phases.emit = emit_start.elapsed();
        report.code_words = (self.total_words() - words_before) as u32;
        self.reports.push(report);
        consumed
    }

    /// A loop whose body contains nested loops: emitted structurally, each
    /// region drained.
    fn emit_structured_loop(&mut self, l: &ir::Loop, depth: u32, label: &str) {
        if matches!(l.trip, TripCount::Const(0)) {
            return;
        }
        let counter = self.trip_counter(&l.trip, label);
        match l.trip {
            TripCount::Const(_) => {
                let body = self.open_fallthrough(format!("{label}.body"));
                self.emit_stmts(&l.body, depth + 1);
                let exit = BlockId(self.blocks.len() as u32);
                self.cur().term = Terminator::CountedLoop {
                    counter,
                    dec: 1,
                    back: body,
                    exit,
                };
                self.blocks.push(Block::new(format!("{label}.exit")));
            }
            TripCount::Reg(_) => {
                let guard = self.alloc_reg(Type::I32, format!("{label}.guard"));
                self.append_ops(&[Op::new(
                    Opcode::ICmp(ir::CmpPred::Gt),
                    Some(guard),
                    vec![counter.into(), Imm::I(0).into()],
                )]);
                let cond_block = self.cur_id();
                let body = BlockId(self.blocks.len() as u32);
                self.blocks.push(Block::new(format!("{label}.body")));
                self.emit_stmts(&l.body, depth + 1);
                let exit = BlockId(self.blocks.len() as u32);
                self.cur().term = Terminator::CountedLoop {
                    counter,
                    dec: 1,
                    back: body,
                    exit,
                };
                self.blocks.push(Block::new(format!("{label}.exit")));
                self.blocks[cond_block.index()].term = Terminator::CondJump {
                    cond: guard,
                    nonzero: body,
                    zero: exit,
                };
            }
        }
    }

    /// Materializes the trip count into a fresh counter register (counted
    /// loops destroy their counter).
    fn trip_counter(&mut self, trip: &TripCount, label: &str) -> VReg {
        let c = self.alloc_reg(Type::I32, format!("{label}.n"));
        let op = match *trip {
            TripCount::Const(n) => Op::new(Opcode::Const, Some(c), vec![Imm::I(n as i32).into()]),
            TripCount::Reg(r) => Op::new(Opcode::Copy, Some(c), vec![r.into()]),
        };
        self.append_ops(&[op]);
        c
    }

    /// Emits the unpipelined version of a loop.
    fn emit_fallback_loop(
        &mut self,
        body: &[Stmt],
        trip: TripCount,
        fallback: &Fallback,
        depth: u32,
        label: &str,
    ) {
        match fallback {
            Fallback::Compact(region) => self.emit_unpipelined(trip, region, label),
            Fallback::Structured => {
                let l = ir::Loop {
                    trip,
                    body: body.to_vec(),
                };
                self.emit_structured_loop(&l, depth, label);
            }
        }
    }

    /// Emits a straight-line loop as a single compacted, drained block.
    fn emit_unpipelined(&mut self, trip: TripCount, compacted: &CompactedRegion, label: &str) {
        if compacted.words.is_empty() || matches!(trip, TripCount::Const(0)) {
            return;
        }
        let counter = self.trip_counter(&trip, label);
        match trip {
            TripCount::Const(_) => {
                let body = self.open_fallthrough(format!("{label}.body"));
                self.cur().words = compacted.clone().into_padded_words();
                let exit = BlockId(self.blocks.len() as u32);
                self.cur().term = Terminator::CountedLoop {
                    counter,
                    dec: 1,
                    back: body,
                    exit,
                };
                self.blocks.push(Block::new(format!("{label}.exit")));
            }
            TripCount::Reg(_) => {
                let guard = self.alloc_reg(Type::I32, format!("{label}.guard"));
                self.append_ops(&[Op::new(
                    Opcode::ICmp(ir::CmpPred::Gt),
                    Some(guard),
                    vec![counter.into(), Imm::I(0).into()],
                )]);
                let cond_block = self.cur_id();
                let body = BlockId(self.blocks.len() as u32);
                self.blocks.push(Block::new(format!("{label}.body")));
                self.cur().words = compacted.clone().into_padded_words();
                let exit = BlockId(self.blocks.len() as u32);
                self.cur().term = Terminator::CountedLoop {
                    counter,
                    dec: 1,
                    back: body,
                    exit,
                };
                self.blocks.push(Block::new(format!("{label}.exit")));
                self.blocks[cond_block.index()].term = Terminator::CondJump {
                    cond: guard,
                    nonzero: body,
                    zero: exit,
                };
            }
        }
    }

    /// Decides whether (and how) to pipeline; fills in the report.
    fn plan_pipeline(
        &mut self,
        items: Vec<Node>,
        trip: &TripCount,
        unpip_len: u32,
        loop_idx: u32,
        report: &mut LoopReport,
    ) -> Option<PipelinePlan> {
        // Compute the bounds even when pipelining is skipped, for the
        // statistics tables.
        let build_start = Instant::now();
        let mut build_opts = self.opts.build;
        build_opts.loop_carried = true;
        // A known trip count sharpens memory disambiguation: crossings
        // outside the iteration space are refuted instead of constraining
        // the schedule.
        build_opts.trip = match *trip {
            TripCount::Const(n) => Some(n),
            TripCount::Reg(_) => None,
        };
        let lf = self
            .facts
            .as_ref()
            .and_then(|f| f.for_loop(loop_idx))
            .cloned();
        if let Some(lf) = &lf {
            // Constant propagation may have resolved a register trip count
            // to a literal; that sharpens `alias_with_trip` the same way a
            // syntactic constant does.
            if build_opts.trip.is_none() {
                build_opts.trip = lf.trip;
            }
        }
        let mut g = build_item_graph(items, self.mach, build_opts);
        if let Some(lf) = &lf {
            let out = crate::absint::refute_graph(&mut g, lf);
            report.stats.absint = Some(out.stats);
        }
        let g = g;
        report.stats.phases.build = build_start.elapsed();
        report.stats.memdeps = DepEdgeSummary::collect(&g);
        let bounds_start = Instant::now();
        // SCC decomposition + symbolic closures, computed exactly once and
        // shared between the bounds below and every II attempt.
        let analysis = SchedAnalysis::analyze(&g);
        report.mii_res = match res_mii(&g, self.mach) {
            Ok(r) => r,
            Err(e) => {
                report.stats.phases.bounds = bounds_start.elapsed();
                report.not_pipelined = Some(NotPipelined::SearchFailed(e.to_string()));
                return None;
            }
        };
        report.mii_rec = match rec_mii(&analysis.closures) {
            Ok(r) => r,
            Err(_) => {
                report.stats.phases.bounds = bounds_start.elapsed();
                report.not_pipelined = Some(NotPipelined::SearchFailed(
                    "illegal dependence cycle".into(),
                ));
                return None;
            }
        };
        // A loop "contains a connected component" in the paper's sense
        // when a dependence cycle actually constrains the interval; the
        // ubiquitous counter increment (RecMII = 1) does not count.
        report.has_recurrence = report.mii_rec > 1;
        let mii = MiiReport {
            res_mii: report.mii_res,
            rec_mii: report.mii_rec,
        }
        .mii();
        report.stats.phases.bounds = bounds_start.elapsed();

        if !self.opts.pipeline {
            report.not_pipelined = Some(NotPipelined::Disabled);
            return None;
        }
        if report.num_ops as u32 > self.opts.body_len_threshold {
            report.not_pipelined = Some(NotPipelined::BodyTooLong {
                ops: report.num_ops,
                threshold: self.opts.body_len_threshold,
            });
            return None;
        }
        if (mii as f64) >= self.opts.near_bound_fraction * unpip_len as f64 {
            report.not_pipelined = Some(NotPipelined::NearBound {
                mii,
                unpipelined: unpip_len,
            });
            return None;
        }
        let search_start = Instant::now();
        let sched_opts = self.opts.sched;
        let (sched_result, telemetry) =
            modulo_schedule_analyzed(&g, self.mach, &sched_opts, &analysis, self.scratch);
        report.stats.phases.search = search_start.elapsed();
        report.stats.sched = telemetry;
        let result = match sched_result {
            Ok(r) => r,
            Err(e) => {
                report.not_pipelined = Some(NotPipelined::SearchFailed(e.to_string()));
                return None;
            }
        };
        // Feedback-guided refinement: spend a bounded perturbation budget
        // trying to close the gap to the MII. The baseline schedule is
        // kept as a fallback — an improvement that later fails the
        // trip-count or register-file checks must not cost the loop its
        // pipeline.
        let mut schedule = result.schedule;
        let mut fallback: Option<Schedule> = None;
        if self.opts.refine {
            let refine_start = Instant::now();
            let limiting = report
                .stats
                .sched
                .attempts
                .iter()
                .find(|a| a.failure.is_none())
                .and_then(|a| a.limiting);
            let out = crate::refine::refine(
                &g,
                self.mach,
                &sched_opts,
                &analysis,
                schedule.ii(),
                mii,
                limiting,
                &crate::refine::RefineConfig::default(),
                self.scratch,
            );
            report.stats.refine = Some(out.stats());
            if let Some(imp) = out.improved {
                fallback = Some(schedule);
                schedule = imp.schedule;
            }
            report.stats.phases.search += refine_start.elapsed();
        }

        if schedule.ii() >= unpip_len.max(1) {
            report.not_pipelined = Some(NotPipelined::NotProfitable {
                ii: schedule.ii(),
                unpipelined: unpip_len,
            });
            return None;
        }
        let mut candidate = Some(schedule);
        while let Some(sched) = candidate.take() {
            let expand_start = Instant::now();
            let mut exp = expand(&g, &sched, self.mach, &mut self.regs, self.opts.unroll_policy);
            report.stats.phases.expand += expand_start.elapsed();

            if let TripCount::Const(n) = *trip {
                let k = sched.stages(&g) - 1;
                if n < k {
                    if let Some(base) = fallback.take() {
                        // The refined schedule stretched the pipeline past
                        // the trip count; the baseline still fits.
                        Self::revert_refine(report);
                        candidate = Some(base);
                        continue;
                    }
                    report.not_pipelined =
                        Some(NotPipelined::TripTooSmall { trip: n, needed: k });
                    return None;
                }
            }

            if self.opts.respect_reg_files {
                if let Some((class, required, available)) = self.register_overflow(&g, &exp) {
                    // A refined schedule whose rotating footprint overflows
                    // may still fit under the other unroll policy.
                    let mut rescued = false;
                    if fallback.is_some() {
                        let flipped = match self.opts.unroll_policy {
                            UnrollPolicy::MinRegisters => UnrollPolicy::MinCodeSize,
                            UnrollPolicy::MinCodeSize => UnrollPolicy::MinRegisters,
                        };
                        let exp2 = expand(&g, &sched, self.mach, &mut self.regs, flipped);
                        if self.register_overflow(&g, &exp2).is_none() {
                            exp = exp2;
                            rescued = true;
                            if let Some(rs) = report.stats.refine.as_mut() {
                                if let Some(w) = rs.winner.as_mut() {
                                    w.push_str("+mve-flip");
                                }
                            }
                        }
                    }
                    if !rescued {
                        if let Some(base) = fallback.take() {
                            Self::revert_refine(report);
                            candidate = Some(base);
                            continue;
                        }
                        report.not_pipelined = Some(NotPipelined::Registers {
                            class,
                            required,
                            available,
                        });
                        return None;
                    }
                }
            }

            report.ii = Some(sched.ii());
            report.unroll = exp.unroll;
            report.stages = sched.stages(&g);
            report.stats.mve_copies = exp.total_copies();
            report.stats.stage_histogram = sched.stage_histogram(&g);
            return Some(PipelinePlan { g, sched, exp });
        }
        None
    }

    /// Resets the refinement telemetry after the improved schedule was
    /// rejected by a downstream check and the baseline restored.
    fn revert_refine(report: &mut LoopReport) {
        if let Some(rs) = report.stats.refine.as_mut() {
            rs.refined_ii = rs.baseline_ii;
            rs.winner = None;
        }
    }

    /// Checks the loop's register footprint (variables referenced in the
    /// body plus rotating copies) against the machine's file sizes.
    fn register_overflow(&self, g: &DepGraph, exp: &Expansion) -> Option<(RegClass, u32, u32)> {
        let mut used: std::collections::BTreeSet<VReg> = std::collections::BTreeSet::new();
        for n in g.nodes() {
            n.for_each_access(&mut |a| match a {
                Access::Op { op, .. } => {
                    used.extend(op.uses());
                    used.extend(op.def());
                }
                Access::CondUse { reg, .. } => {
                    used.insert(reg);
                }
            });
        }
        let mut counts: std::collections::BTreeMap<RegClass, u32> = Default::default();
        for &v in &used {
            *counts.entry(self.regs.class(v)).or_insert(0) += exp.locations(v);
        }
        for (class, required) in counts {
            if let Some(available) = self.mach.reg_file_size(class) {
                if required > available {
                    return Some((class, required, available));
                }
            }
        }
        None
    }

    /// Emits prolog + kernel + epilog, with the §2.4 unpipelined remainder
    /// scheme.
    fn emit_pipelined(
        &mut self,
        l: &ir::Loop,
        fallback: &Fallback,
        plan: PipelinePlan,
        label: &str,
        tail: &[Op],
    ) -> bool {
        let gen = InstanceGen::new(&plan, self.mach);
        let (k, u) = (gen.k, gen.u);

        match l.trip {
            TripCount::Const(n) => {
                let n = n as i64;
                debug_assert!(n >= k as i64, "plan_pipeline rejects small trips");
                let r = (n - k as i64) % u as i64;
                let passes = (n - k as i64) / u as i64;
                if r > 0 {
                    self.emit_fallback_loop(
                        &l.body,
                        TripCount::Const(r as u32),
                        fallback,
                        0,
                        &format!("{label}.rem"),
                    );
                }
                // The pass counter initializes *before* the prolog: the
                // prolog→kernel→epilog stream must stay cycle-exact — an
                // extra word between regions would shift every in-flight
                // latency crossing the boundary.
                let counter = if passes > 0 {
                    let counter = self.alloc_reg(Type::I32, format!("{label}.passes"));
                    self.cur().words.push(Word {
                        ops: vec![Op::new(
                            Opcode::Const,
                            Some(counter),
                            vec![Imm::I(passes as i32).into()],
                        )],
                    });
                    Some(counter)
                } else {
                    None
                };
                self.emit_region(gen.prolog());
                if let Some(counter) = counter {
                    let kernel = self.open_fallthrough(format!("{label}.kernel"));
                    self.emit_region(gen.kernel());
                    let exit = BlockId(self.blocks.len() as u32);
                    self.cur().term = Terminator::CountedLoop {
                        counter,
                        dec: 1,
                        back: kernel,
                        exit,
                    };
                    self.blocks.push(Block::new(format!("{label}.epilog")));
                } else {
                    self.open_fallthrough(format!("{label}.epilog"));
                }
                let epilog = gen.epilog();
                if self.opts.fuse_epilog && epilog.splits.is_empty() && !tail.is_empty() {
                    let words = self.fuse_epilog_scalar(&gen, &epilog, tail);
                    self.cur().words.extend(words);
                    true
                } else {
                    self.emit_region(epilog);
                    self.emit_copybacks(&gen);
                    false
                }
            }
            TripCount::Reg(nr) => {
                self.emit_runtime_pipelined(l, fallback, &gen, nr, label, k, u);
                false
            }
        }
    }

    /// Schedules the scalar run (and the rotating-register copy-backs)
    /// *into* the epilog's empty slots. The epilog instances keep their
    /// modulo-schedule cycles; each scalar op is list-scheduled at the
    /// earliest slot satisfying (a) its dependences on epilog instances
    /// and earlier scalar ops and (b) a per-register horizon covering
    /// writes still in flight from pre-epilog (prolog/kernel) instances.
    fn fuse_epilog_scalar(
        &mut self,
        gen: &InstanceGen<'_>,
        epilog: &Region,
        tail: &[Op],
    ) -> Vec<Word> {
        // Combined program order: epilog instances (by cycle), then the
        // copy-backs, then the user's scalar run.
        let mut base: Vec<(u32, Op)> = Vec::new();
        for (t, w) in epilog.words.iter().enumerate() {
            for op in &w.ops {
                base.push((t as u32, op.clone()));
            }
        }
        let mut extra: Vec<Op> = gen.copyback_ops();
        extra.extend(tail.iter().cloned());
        let all: Vec<Op> = base
            .iter()
            .map(|(_, op)| op.clone())
            .chain(extra.iter().cloned())
            .collect();
        let g = build_item_graph(
            all.iter()
                .map(|op| {
                    crate::graph::Node::op(
                        op.clone(),
                        self.mach.reservation(op.opcode.class()).clone(),
                    )
                })
                .collect(),
            self.mach,
            BuildOptions {
                loop_carried: false,
                enable_mve: false,
                prune_dominated: false,
                trip: None,
                ..BuildOptions::default()
            },
        );
        let nb = base.len();
        let horizons = gen.reg_horizons();
        let horizon_of = |op: &Op| -> i64 {
            let mut h = 0i64;
            for r in op.uses().chain(op.def()) {
                h = h.max(horizons.get(&r).copied().unwrap_or(0));
            }
            h
        };

        // Seed the resource grid with the fixed epilog instances.
        let mut table = crate::mrt::LinearTable::new(self.mach);
        let mut time: Vec<i64> = Vec::with_capacity(all.len());
        for (t, op) in &base {
            table.place(self.mach.reservation(op.opcode.class()), *t as i64);
            time.push(*t as i64);
        }
        // Earliest start per scalar op from dependence edges.
        let mut earliest = vec![0i64; extra.len()];
        for (i, op) in extra.iter().enumerate() {
            let idx = nb + i;
            let mut t0 = horizon_of(op);
            for e in g.pred_edges(crate::graph::NodeId(idx as u32)) {
                let from = e.from.index();
                if from < time.len() {
                    t0 = t0.max(time[from] + e.delay);
                }
            }
            earliest[i] = t0;
            let mut t = t0.max(0);
            let res = self.mach.reservation(op.opcode.class());
            while !table.fits(res, t) {
                t += 1;
            }
            table.place(res, t);
            time.push(t);
        }

        // Materialize words, padded so the region drains completely —
        // including writes from pre-epilog instances still in flight past
        // the epilog's end.
        let mut end = (epilog.words.len() + gen.epilog_tail() as usize) as i64;
        for (idx, op) in all.iter().enumerate() {
            let lat = self.mach.latency(op.opcode.class()) as i64;
            end = end.max(time[idx] + lat);
        }
        let mut words = vec![Word::empty(); end as usize];
        for (idx, op) in all.iter().enumerate() {
            words[time[idx] as usize].ops.push(op.clone());
        }
        words
    }

    /// The unknown-trip-count scheme: one unpipelined loop executes either
    /// all `n` iterations (when `n < k`) or the `(n-k) mod u` remainder,
    /// then the pipelined regions run unless `n < k`.
    #[allow(clippy::too_many_arguments)] // mirrors the §2.4 scheme's moving parts
    fn emit_runtime_pipelined(
        &mut self,
        l: &ir::Loop,
        fallback: &Fallback,
        gen: &InstanceGen<'_>,
        nr: VReg,
        label: &str,
        k: u32,
        u: u32,
    ) {
        // Preamble arithmetic (latency-1 ALU ops, compacted + drained).
        let t = |e: &mut Self, name: &str| e.alloc_reg(Type::I32, format!("{label}.{name}"));
        let small = t(self, "small");
        let nk = t(self, "nk");
        let r = t(self, "r");
        let passes = t(self, "passes");
        let cnt_un = t(self, "cnt_un");
        let cnt_ker = t(self, "cnt_ker");
        let any_ker = t(self, "any_ker");
        let pre = vec![
            Op::new(
                Opcode::ICmp(ir::CmpPred::Lt),
                Some(small),
                vec![nr.into(), Imm::I(k as i32).into()],
            ),
            Op::new(Opcode::Sub, Some(nk), vec![nr.into(), Imm::I(k as i32).into()]),
            Op::new(Opcode::Rem, Some(r), vec![nk.into(), Imm::I(u as i32).into()]),
            Op::new(Opcode::Div, Some(passes), vec![nk.into(), Imm::I(u as i32).into()]),
            Op::new(
                Opcode::Select,
                Some(cnt_un),
                vec![small.into(), nr.into(), r.into()],
            ),
            Op::new(
                Opcode::Select,
                Some(cnt_ker),
                vec![small.into(), Imm::I(0).into(), passes.into()],
            ),
            Op::new(
                Opcode::ICmp(ir::CmpPred::Gt),
                Some(any_ker),
                vec![cnt_ker.into(), Imm::I(0).into()],
            ),
        ];
        self.append_ops(&pre);

        // Unpipelined portion: the fallback loop self-guards on its count.
        self.emit_fallback_loop(
            &l.body,
            TripCount::Reg(cnt_un),
            fallback,
            0,
            &format!("{label}.rem"),
        );

        // If n < k the pipelined part is skipped entirely.
        let skip_block = self.cur_id();
        self.blocks.push(Block::new(format!("{label}.prolog")));
        self.emit_region(gen.prolog());
        let prolog_exit = self.cur_id();
        let kernel_entry = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(format!("{label}.kernel")));
        self.emit_region(gen.kernel());
        let epilog_entry = BlockId(self.blocks.len() as u32);
        self.cur().term = Terminator::CountedLoop {
            counter: cnt_ker,
            dec: 1,
            back: kernel_entry,
            exit: epilog_entry,
        };
        self.blocks.push(Block::new(format!("{label}.epilog")));
        self.emit_region(gen.epilog());
        self.emit_copybacks(gen);
        let after = self.open_fallthrough(format!("{label}.after"));

        self.blocks[skip_block.index()].term = Terminator::CondJump {
            cond: small,
            nonzero: after,
            zero: BlockId(skip_block.0 + 1),
        };
        self.blocks[prolog_exit.index()].term = Terminator::CondJump {
            cond: any_ker,
            nonzero: kernel_entry,
            zero: epilog_entry,
        };
    }

    /// After the epilog: wait for in-flight results, then copy each
    /// rotated variable's final copy back to its original register so
    /// downstream scalar code sees it under its own name.
    fn emit_copybacks(&mut self, gen: &InstanceGen<'_>) {
        for _ in 0..gen.epilog_tail() {
            self.cur().words.push(Word::empty());
        }
        let copies = gen.copyback_ops();
        if !copies.is_empty() {
            let region = compact_block(&copies, self.mach);
            self.append_region(region);
        }
    }

    /// Emits a region (words plus conditional splits) into the current
    /// block chain, splitting at each reduced-conditional instance.
    fn emit_region(&mut self, region: Region) {
        let words = region.words;
        self.emit_window(&words, region.splits);
    }

    /// Emits a window of words with (window-local) splits. Splits are
    /// disjoint (the sequencer resource serializes reduced constructs).
    fn emit_window(&mut self, words: &[Word], mut splits: Vec<SplitSpec>) {
        splits.sort_by_key(|s| s.at);
        let mut cursor = 0usize;
        for sp in splits {
            debug_assert!(sp.at >= cursor, "overlapping conditional instances");
            for w in &words[cursor..sp.at] {
                self.cur().words.push(w.clone());
            }
            let window_end = sp.at + sp.len as usize;
            debug_assert!(window_end <= words.len(), "split exceeds region");

            // Both arms carry the base (parallel) words plus their own ops.
            let base: &[Word] = &words[sp.at..window_end];
            let then_words = merge_arm_words(base, &sp.then_ops, sp.len);
            let else_words = merge_arm_words(base, &sp.else_ops, sp.len);

            let cond_block = self.cur_id();
            let then_entry = BlockId(self.blocks.len() as u32);
            self.blocks.push(Block::new("cond.then"));
            self.emit_window(&then_words, sp.then_children);
            let then_exit = self.cur_id();
            let else_entry = BlockId(self.blocks.len() as u32);
            self.blocks.push(Block::new("cond.else"));
            self.emit_window(&else_words, sp.else_children);
            let else_exit = self.cur_id();
            let join = BlockId(self.blocks.len() as u32);
            self.blocks.push(Block::new("cond.join"));
            self.blocks[cond_block.index()].term = Terminator::CondJump {
                cond: sp.cond,
                nonzero: then_entry,
                zero: else_entry,
            };
            self.blocks[then_exit.index()].term = Terminator::Jump(join);
            self.blocks[else_exit.index()].term = Terminator::Fall(join);
            cursor = window_end;
        }
        for w in &words[cursor..] {
            self.cur().words.push(w.clone());
        }
    }
}

fn merge_arm_words(base: &[Word], arm_ops: &[(u32, Op)], len: u32) -> Vec<Word> {
    let mut out: Vec<Word> = base.to_vec();
    out.resize(len as usize, Word::empty());
    for (off, op) in arm_ops {
        out[*off as usize].ops.push(op.clone());
    }
    out
}

/// Everything needed to materialize the three code regions.
struct PipelinePlan {
    g: DepGraph,
    sched: Schedule,
    exp: Expansion,
}

/// A region's word stream plus the conditional instances inside it.
struct Region {
    words: Vec<Word>,
    splits: Vec<SplitSpec>,
}

/// One reduced-conditional instance to expand at emission time.
struct SplitSpec {
    /// Start cycle, window-local.
    at: usize,
    /// Construct length.
    len: u32,
    /// Renamed condition register.
    cond: VReg,
    /// THEN arm ops (offset within the construct, renamed).
    then_ops: Vec<(u32, Op)>,
    /// ELSE arm ops.
    else_ops: Vec<(u32, Op)>,
    /// Nested conditionals in the THEN arm (construct-local offsets).
    then_children: Vec<SplitSpec>,
    /// Nested conditionals in the ELSE arm.
    else_children: Vec<SplitSpec>,
}

/// Computes op instances for prolog/kernel/epilog words.
struct InstanceGen<'a> {
    plan: &'a PipelinePlan,
    mach: &'a MachineDescription,
    /// Per node: (stage, offset-within-stage).
    placed: Vec<(u32, u32)>,
    s: u32,
    k: u32,
    u: u32,
    len: u32,
}

impl<'a> InstanceGen<'a> {
    fn new(plan: &'a PipelinePlan, mach: &'a MachineDescription) -> Self {
        let s = plan.sched.ii();
        let len = plan.sched.len_with(&plan.g);
        let stages = plan.sched.stages(&plan.g);
        let k = stages - 1;
        let u = plan.exp.unroll;
        let placed = plan
            .g
            .node_ids()
            .map(|n| {
                let t = plan.sched.time(n) as u32;
                (t / s, t % s)
            })
            .collect();
        InstanceGen {
            plan,
            mach,
            placed,
            s,
            k,
            u,
            len,
        }
    }

    /// Renames expanded variables for (local) iteration `it`.
    fn rename(&self, op: &Op, it: u64) -> Op {
        let mut op = op.clone();
        if let Some(d) = op.dst {
            op.dst = Some(self.plan.exp.reg_for(d, it));
        }
        for sop in &mut op.srcs {
            if let Operand::Reg(r) = sop {
                *r = self.plan.exp.reg_for(*r, it);
            }
        }
        op
    }

    /// Adds node `i`'s instance for iteration `it` at region-local cycle
    /// `c` to the region.
    fn add_instance(&self, region: &mut Region, i: usize, it: u64, c: usize) {
        let node = self.plan.g.node(crate::graph::NodeId(i as u32));
        match &node.kind {
            NodeKind::Op(op) => region.words[c].ops.push(self.rename(op, it)),
            NodeKind::Cond(rc) => region.splits.push(self.materialize_cond(rc, it, c)),
        }
    }

    fn materialize_cond(&self, rc: &ReducedCond, it: u64, at: usize) -> SplitSpec {
        let mut sp = SplitSpec {
            at,
            len: rc.len,
            cond: self.plan.exp.reg_for(rc.cond, it),
            then_ops: Vec::new(),
            else_ops: Vec::new(),
            then_children: Vec::new(),
            else_children: Vec::new(),
        };
        for (items, ops, children) in [
            (&rc.then_items, &mut sp.then_ops, &mut sp.then_children),
            (&rc.else_items, &mut sp.else_ops, &mut sp.else_children),
        ] {
            for item in items {
                match &item.node.kind {
                    NodeKind::Op(op) => ops.push((item.offset, self.rename(op, it))),
                    NodeKind::Cond(nested) => {
                        children.push(self.materialize_cond(nested, it, item.offset as usize));
                    }
                }
            }
        }
        sp
    }

    /// Prolog: cycles `[0, k*s)`; iteration `it` issues at `it*s + time`.
    fn prolog(&self) -> Region {
        let total = (self.k * self.s) as usize;
        let mut region = Region {
            words: vec![Word::empty(); total],
            splits: Vec::new(),
        };
        for (i, &(st, off)) in self.placed.iter().enumerate() {
            let sigma = (st * self.s + off) as usize;
            let mut it = 0usize;
            loop {
                let c = it * self.s as usize + sigma;
                if c >= total {
                    break;
                }
                self.add_instance(&mut region, i, it as u64, c);
                it += 1;
            }
        }
        region
    }

    /// Kernel: `u*s` cycles; at offset `a*s + b`, nodes with offset `b`
    /// run for local iteration `k - stage + a` (modulo `u`).
    fn kernel(&self) -> Region {
        let mut region = Region {
            words: vec![Word::empty(); (self.u * self.s) as usize],
            splits: Vec::new(),
        };
        for a in 0..self.u {
            for (i, &(st, off)) in self.placed.iter().enumerate() {
                let q = (a * self.s + off) as usize;
                let it = ((self.k - st + a) % self.u) as u64;
                self.add_instance(&mut region, i, it, q);
            }
        }
        region
    }

    /// Epilog: `len - s` cycles draining the last `k` iterations. The
    /// instance at offset `e` exists for stage `st` when `(e - off)` is a
    /// nonnegative multiple `g*s` with `g < st`; its local iteration is
    /// congruent to `k - st + g` (mod `u`).
    fn epilog(&self) -> Region {
        let elen = (self.len - self.s) as usize;
        let mut region = Region {
            words: vec![Word::empty(); elen],
            splits: Vec::new(),
        };
        for e in 0..elen as i64 {
            for (i, &(st, off)) in self.placed.iter().enumerate() {
                let diff = e - off as i64;
                if diff >= 0 && diff % self.s as i64 == 0 {
                    let gstages = diff / self.s as i64;
                    if gstages < st as i64 {
                        let it = (self.k as i64 - st as i64 + gstages) as u64;
                        self.add_instance(&mut region, i, it % self.u as u64, e as usize);
                    }
                }
            }
        }
        region
    }

    /// The copy-back operations restoring each rotated variable's final
    /// value to its home register. Local iteration count n' satisfies
    /// n' ≡ k (mod u), so the final iteration n'-1 uses copy
    /// (k-1) mod n_v (or n_v - 1 when k == 0, since n' is then a positive
    /// multiple of u).
    fn copyback_ops(&self) -> Vec<Op> {
        let mut copies = Vec::new();
        for (&v, cs) in &self.plan.exp.copies {
            let n_v = cs.len() as u64;
            let last = if self.k == 0 {
                (n_v - 1) as usize
            } else {
                ((self.k as u64 - 1) % n_v) as usize
            };
            let src = cs[last];
            if src != v {
                copies.push(Op::new(Opcode::Copy, Some(v), vec![src.into()]));
            }
        }
        copies
    }

    /// Per-register in-flight horizons for epilog fusion: a write issued
    /// by a pre-epilog instance retires at most `latency - 1` cycles into
    /// the epilog, so code touching that register must start at or after
    /// `latency`. Keyed by the *renamed* registers (every rotating copy of
    /// a destination inherits its producer's latency).
    fn reg_horizons(&self) -> std::collections::BTreeMap<ir::VReg, i64> {
        let mut h: std::collections::BTreeMap<ir::VReg, i64> = Default::default();
        for n in self.plan.g.node_ids() {
            self.plan.g.node(n).for_each_access(&mut |a| {
                if let Access::Op { op, .. } = a {
                    if let Some(d) = op.def() {
                        let lat = self.mach.latency(op.opcode.class()) as i64;
                        match self.plan.exp.copies.get(&d) {
                            Some(cs) => {
                                for &c in cs {
                                    let e = h.entry(c).or_insert(0);
                                    *e = (*e).max(lat);
                                }
                            }
                            None => {
                                let e = h.entry(d).or_insert(0);
                                *e = (*e).max(lat);
                            }
                        }
                    }
                }
            });
        }
        h
    }

    /// Cycles past the epilog before every result has retired.
    fn epilog_tail(&self) -> u32 {
        let mut tail = 0i64;
        for (i, &(st, off)) in self.placed.iter().enumerate() {
            let sigma = (st * self.s + off) as i64;
            let node = self.plan.g.node(crate::graph::NodeId(i as u32));
            let mut node_end = node.len as i64;
            node.for_each_access(&mut |a| {
                if let Access::Op { offset, op, .. } = a {
                    let lat = self.mach.latency(op.opcode.class()) as i64;
                    node_end = node_end.max(offset as i64 + lat);
                }
            });
            tail = tail.max(sigma + node_end - self.len as i64);
        }
        tail.max(0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{CmpPred, ProgramBuilder};
    use machine::presets::{test_machine, warp_cell};

    fn vinc(n: u32) -> Program {
        let mut b = ProgramBuilder::new("vinc");
        let a = b.array("a", n.max(1));
        b.for_counted(TripCount::Const(n), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
        });
        b.finish()
    }

    /// The prolog→kernel→epilog stream must be cycle-exact: the prolog
    /// block carries exactly `k*s` region words plus the single
    /// pass-counter word *before* them, the kernel block exactly `u*s`.
    #[test]
    fn regions_are_cycle_exact() {
        let m = warp_cell();
        let c = compile(&vinc(64), &m, &CompileOptions::default()).unwrap();
        let r = &c.reports[0];
        let (ii, u, stages) = (r.ii.unwrap(), r.unroll, r.stages);
        let k = stages - 1;
        let kernel = c
            .vliw
            .blocks
            .iter()
            .find(|b| b.label.ends_with(".kernel"))
            .expect("kernel block");
        assert_eq!(kernel.words.len() as u32, u * ii, "kernel is u*s words");
        // The block before the kernel holds preamble + counter + prolog;
        // its last k*s words are the prolog region.
        let before = c
            .vliw
            .blocks
            .iter()
            .position(|b| b.label.ends_with(".kernel"))
            .expect("kernel position");
        let pre = &c.vliw.blocks[before - 1];
        assert!(
            pre.words.len() as u32 >= k * ii,
            "prolog words present: {} < {}",
            pre.words.len(),
            k * ii
        );
        // No pass-counter write may sit *between* prolog words and the
        // kernel: the last prolog word is the region's final cycle.
        let tail_ops: Vec<_> = pre.words[pre.words.len() - (k * ii) as usize..]
            .iter()
            .flat_map(|w| &w.ops)
            .filter(|o| matches!(o.opcode, Opcode::Const))
            .collect();
        assert!(
            tail_ops.is_empty(),
            "counter init must precede the prolog region"
        );
    }

    #[test]
    fn trip_too_small_falls_back() {
        let m = warp_cell();
        // Two iterations cannot fill a multi-stage pipe on Warp.
        let c = compile(&vinc(2), &m, &CompileOptions::default()).unwrap();
        let r = &c.reports[0];
        assert!(
            matches!(r.not_pipelined, Some(NotPipelined::TripTooSmall { .. })),
            "{:?}",
            r.not_pipelined
        );
        // And the fallback still terminates with a counted loop.
        assert!(c
            .vliw
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::CountedLoop { .. })));
    }

    #[test]
    fn not_profitable_falls_back() {
        // A body that is one serial chain: the schedule's interval equals
        // the unpipelined length, so pipelining is refused post hoc (when
        // the 99% pre-filter is disabled).
        let m = test_machine();
        let mut b = ProgramBuilder::new("serial");
        let out = b.array("o", 1);
        let acc = b.fconst(1.0);
        b.for_counted(TripCount::Const(16), |b, _| {
            let t = b.fadd(acc.into(), 1.0f32.into());
            b.push_op(Op::new(Opcode::FMul, Some(acc), vec![t.into(), t.into()]));
        });
        b.store_fixed(out, 0, acc.into());
        let p = b.finish();
        let opts = CompileOptions {
            near_bound_fraction: 10.0, // effectively off
            ..Default::default()
        };
        let c = compile(&p, &m, &opts).unwrap();
        let r = &c.reports[0];
        assert!(
            matches!(
                r.not_pipelined,
                Some(NotPipelined::NotProfitable { .. }) | Some(NotPipelined::NearBound { .. })
            ),
            "{:?}",
            r.not_pipelined
        );
    }

    #[test]
    fn conditional_body_emits_branches_in_kernel() {
        let m = warp_cell();
        let mut b = ProgramBuilder::new("cond");
        let a = b.array("a", 64);
        let o = b.array("o", 64);
        b.for_counted(TripCount::Const(64), |b, i| {
            let x = b.load_elem(a, i.into(), 1, 0);
            let c = b.fcmp(CmpPred::Gt, x.into(), 1.0f32.into());
            let y = b.named_reg(ir::Type::F32, "y");
            b.if_else(
                c,
                |b| b.copy_to(y, x.into()),
                |b| b.copy_to(y, 0.0f32.into()),
            );
            b.store_elem(o, i.into(), 1, 0, y.into());
        });
        let p = b.finish();
        let c = compile(&p, &m, &CompileOptions::default()).unwrap();
        assert!(c.reports[0].ii.is_some(), "{:?}", c.reports[0].not_pipelined);
        let branches = c
            .vliw
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::CondJump { .. }))
            .count();
        // One split per conditional instance across prolog, unrolled
        // kernel and epilog.
        assert!(branches >= 3, "{branches} branches");
    }

    #[test]
    fn zero_trip_loop_emits_nothing() {
        let m = test_machine();
        let c = compile(&vinc(0), &m, &CompileOptions::default()).unwrap();
        assert!(c
            .vliw
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::CountedLoop { .. })));
    }

    #[test]
    fn disabled_pipelining_reports_reason() {
        let m = test_machine();
        let c = compile(
            &vinc(32),
            &m,
            &CompileOptions {
                pipeline: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(c.reports[0].not_pipelined, Some(NotPipelined::Disabled));
        assert!(c.reports[0].mii_res > 0, "bounds still computed for stats");
    }
}
