//! Scheduler telemetry: a per-loop record of what the modulo scheduler
//! actually did — every initiation interval attempted, why each failed
//! attempt aborted, the SCC structure that shaped the search, and
//! wall-clock time per compilation phase.
//!
//! The telemetry exists for the evaluation pipeline (the `bench` crate's
//! `batch` binary writes one line per loop into
//! `results/batch_report.txt`) and for debugging II regressions: when a
//! loop's achieved interval moves, the attempt log shows exactly which
//! intervals were tried and where placement gave up. Collection is cheap
//! (a few heap records per loop) and always on; [`LoopStats`] rides along
//! on [`crate::LoopReport`].
//!
//! Timings are measurement artifacts: two runs of the same compilation
//! produce identical schedules, attempt logs and abort causes, but *not*
//! identical [`PhaseTimes`]. Consumers asserting determinism (the driver's
//! serial-vs-parallel check) must compare emitted programs and II tables,
//! never stats.

use std::fmt;
use std::time::Duration;

use crate::graph::{DepGraph, DepKind, EdgeOrigin};
use crate::scc::tarjan;

/// Why one scheduling attempt at a fixed initiation interval aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptFailure {
    /// A component's self cycle is infeasible at this interval (some
    /// member has a positive-weight path to itself).
    SelfCycleInfeasible {
        /// Index of the failing component (per-attempt numbering, in
        /// ascending order of the component's lowest node id).
        comp: usize,
    },
    /// A node of a strongly connected component found no slot in its
    /// precedence-constrained range.
    ComponentPlacement {
        /// Index of the failing component.
        comp: usize,
        /// Graph node id that could not be placed.
        node: u32,
    },
    /// A condensation vertex failed `s` consecutive resource slots.
    CondensationPlacement {
        /// Index of the failing condensation vertex.
        vertex: usize,
    },
    /// The condensation's ready list drained with vertices outstanding
    /// (cannot happen for a well-formed acyclic condensation; recorded
    /// rather than panicking).
    NoReadyVertex,
    /// A schedule was produced but failed post-hoc validation; the
    /// interval is treated as infeasible.
    Validation {
        /// The validator's description of the first violation.
        reason: String,
    },
}

impl fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttemptFailure::SelfCycleInfeasible { comp } => write!(f, "self-cycle(comp={comp})"),
            AttemptFailure::ComponentPlacement { comp, node } => {
                write!(f, "component(comp={comp},node={node})")
            }
            AttemptFailure::CondensationPlacement { vertex } => {
                write!(f, "condensation(vertex={vertex})")
            }
            AttemptFailure::NoReadyVertex => f.write_str("no-ready-vertex"),
            AttemptFailure::Validation { reason } => write!(f, "validation({reason})"),
        }
    }
}

impl AttemptFailure {
    /// A short stable tag naming the failure kind (for aggregation).
    pub fn kind(&self) -> &'static str {
        match self {
            AttemptFailure::SelfCycleInfeasible { .. } => "self-cycle",
            AttemptFailure::ComponentPlacement { .. } => "component",
            AttemptFailure::CondensationPlacement { .. } => "condensation",
            AttemptFailure::NoReadyVertex => "no-ready-vertex",
            AttemptFailure::Validation { .. } => "validation",
        }
    }
}

/// Which constraint class bound the final placement of a *successful*
/// attempt: did any node land later than its precedence-earliest slot
/// because the modulo reservation table (or a no-wrap rule) was busy, or
/// was every node placed exactly where its dependences allowed?
///
/// The refinement driver ([`crate::refine`]) keys its perturbation order
/// off this field: resource-bound placements respond to tie-break and
/// slot perturbations, recurrence-bound ones to critical-SCC priority
/// boosts and edge pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitingConstraint {
    /// At least one placement was pushed past its precedence-earliest
    /// slot by the reservation table (or a no-wrap constraint).
    Resources,
    /// Every node was placed at its precedence-earliest slot; the
    /// dependence structure alone shaped the schedule.
    Recurrence,
}

impl fmt::Display for LimitingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LimitingConstraint::Resources => "resources",
            LimitingConstraint::Recurrence => "recurrence",
        })
    }
}

/// One scheduling attempt: the candidate interval and how it ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IiAttempt {
    /// The initiation interval tried.
    pub ii: u32,
    /// `None` if the attempt produced a validated schedule.
    pub failure: Option<AttemptFailure>,
    /// For successful attempts, whichever of resources/recurrence bound
    /// the final placement; `None` on failures.
    pub limiting: Option<LimitingConstraint>,
}

/// The full telemetry of one [`crate::modulo_schedule`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedTelemetry {
    /// Total strongly connected components (including trivial single
    /// nodes without self edges).
    pub scc_count: usize,
    /// Sizes of the *nontrivial* components — the ones that constrain the
    /// recurrence bound and are scheduled as units.
    pub scc_sizes: Vec<usize>,
    /// Every attempt, in search order (linear search: ascending intervals;
    /// binary search: probe order).
    pub attempts: Vec<IiAttempt>,
    /// Pareto-insert attempts performed by the closure sweeps across all
    /// nontrivial components (the all-points longest-path preprocessing
    /// step runs once per loop; this is its work metric).
    pub closure_relaxations: u64,
    /// Scheduling-buffer acquisitions served by re-arming an
    /// already-allocated [`crate::SchedScratch`] table during this run
    /// (every acquisition after the run's first). Deterministic: counted
    /// per run, not per scratch lifetime, so batch results are identical
    /// however worker threads share their scratch.
    pub scratch_reuses: u32,
}

impl SchedTelemetry {
    /// Aggregates abort causes as `kind:count` pairs sorted by kind, e.g.
    /// `component:3,validation:1`; `-` when every attempt succeeded or no
    /// attempt was made.
    pub fn abort_summary(&self) -> String {
        let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for a in &self.attempts {
            if let Some(f) = &a.failure {
                *counts.entry(f.kind()).or_insert(0) += 1;
            }
        }
        if counts.is_empty() {
            return "-".to_string();
        }
        counts
            .iter()
            .map(|(k, n)| format!("{k}:{n}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The intervals attempted, e.g. `4-7` for a contiguous ascending run
    /// or `4,8,6,5` otherwise; `-` when none.
    pub fn attempt_range(&self) -> String {
        match (self.attempts.first(), self.attempts.last()) {
            (Some(a), Some(b)) => {
                let contiguous = self
                    .attempts
                    .windows(2)
                    .all(|w| w[1].ii == w[0].ii + 1);
                if self.attempts.len() == 1 {
                    a.ii.to_string()
                } else if contiguous {
                    format!("{}-{}", a.ii, b.ii)
                } else {
                    self.attempts
                        .iter()
                        .map(|a| a.ii.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                }
            }
            _ => "-".to_string(),
        }
    }
}

/// Wall-clock time spent in each compilation phase of one loop.
///
/// Purely observational — see the module docs for the determinism caveat.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Hierarchical reduction of the loop body.
    pub reduce: Duration,
    /// Dependence-graph construction.
    pub build: Duration,
    /// SCC decomposition, closures and MII bounds.
    pub bounds: Duration,
    /// The initiation-interval search (all attempts).
    pub search: Duration,
    /// Modulo variable expansion.
    pub expand: Duration,
    /// Object-code emission (regions, splits, fallback bodies).
    pub emit: Duration,
}

impl PhaseTimes {
    /// Sum of all recorded phases.
    pub fn total(&self) -> Duration {
        self.reduce + self.build + self.bounds + self.search + self.expand + self.emit
    }

    /// Compact `reduce:build:bounds:search:expand:emit` rendering in
    /// microseconds.
    pub fn as_micros_row(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}",
            self.reduce.as_micros(),
            self.build.as_micros(),
            self.bounds.as_micros(),
            self.search.as_micros(),
            self.expand.as_micros(),
            self.emit.as_micros()
        )
    }
}

/// Per-kind dependence-edge counts with memory-edge provenance
/// ([`EdgeOrigin`]), collected once per loop from the pre-expansion
/// dependence graph. `mem_conservative` counts the edges that exist only
/// because alias analysis gave up — the ones the dependence auditor tries
/// to refute — and `conservative_in_scc` the subset sitting on a cycle,
/// where they can inflate RecMII.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepEdgeSummary {
    /// Register flow (def → use) edges.
    pub flow: u32,
    /// Register anti (use → redefinition) edges.
    pub anti: u32,
    /// Register output (def → def) edges.
    pub output: u32,
    /// Memory edges from exact alias verdicts.
    pub mem_exact: u32,
    /// Memory edges from trip-count-bounded distance ranges.
    pub mem_bounded: u32,
    /// Memory edges from `Alias::Unknown` (worst-case assumption).
    pub mem_conservative: u32,
    /// Queue-ordering edges.
    pub queue: u32,
    /// Control-boundary edges.
    pub control: u32,
    /// Conservative memory edges whose endpoints share a strongly
    /// connected component (self edges included): the ones that can bind
    /// the recurrence-limited interval.
    pub conservative_in_scc: u32,
}

impl DepEdgeSummary {
    /// Tallies the edges of a dependence graph.
    pub fn collect(g: &DepGraph) -> Self {
        let mut s = DepEdgeSummary::default();
        for e in g.edges() {
            match e.kind {
                DepKind::True => s.flow += 1,
                DepKind::Anti => s.anti += 1,
                DepKind::Output => s.output += 1,
                DepKind::Memory => match e.origin {
                    EdgeOrigin::MemConservative => s.mem_conservative += 1,
                    EdgeOrigin::MemBounded => s.mem_bounded += 1,
                    _ => s.mem_exact += 1,
                },
                DepKind::Queue => s.queue += 1,
                DepKind::Control => s.control += 1,
            }
        }
        if s.mem_conservative > 0 {
            let scc = tarjan(g);
            s.conservative_in_scc = g
                .edges()
                .iter()
                .filter(|e| e.is_conservative() && scc.comp[e.from.index()] == scc.comp[e.to.index()])
                .count() as u32;
        }
        s
    }

    /// Total memory edges of any provenance.
    pub fn mem_total(&self) -> u32 {
        self.mem_exact + self.mem_bounded + self.mem_conservative
    }

    /// Element-wise sum (for per-job aggregation over loops).
    pub fn add(&mut self, other: &DepEdgeSummary) {
        self.flow += other.flow;
        self.anti += other.anti;
        self.output += other.output;
        self.mem_exact += other.mem_exact;
        self.mem_bounded += other.mem_bounded;
        self.mem_conservative += other.mem_conservative;
        self.queue += other.queue;
        self.control += other.control;
        self.conservative_in_scc += other.conservative_in_scc;
    }

    /// Compact `exact/bounded/conservative(scc=N)` rendering of the
    /// memory-edge provenance, `-` when the loop has no memory edges.
    pub fn memdeps_row(&self) -> String {
        if self.mem_total() == 0 {
            return "-".to_string();
        }
        format!(
            "{}/{}/{}(scc={})",
            self.mem_exact, self.mem_bounded, self.mem_conservative, self.conservative_in_scc
        )
    }
}

/// What the feedback-guided refinement pass ([`crate::refine`]) did to
/// one loop: the heuristic baseline interval, the interval after
/// refinement (equal when no perturbation helped), the number of
/// perturbed attempts spent, and the move that won.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// The interval the unperturbed search achieved.
    pub baseline_ii: u32,
    /// The interval after refinement; never exceeds `baseline_ii`.
    pub refined_ii: u32,
    /// Perturbed scheduling attempts spent (0 when the baseline already
    /// met the MII and refinement had nothing to do).
    pub attempts: u32,
    /// Stable tag of the perturbation that produced the improvement
    /// (e.g. `seed#2`, `critical-scc`); `None` when nothing improved.
    pub winner: Option<String>,
}

impl RefineStats {
    /// Cycles of II the refinement recovered.
    pub fn closed(&self) -> u32 {
        self.baseline_ii.saturating_sub(self.refined_ii)
    }
}

/// What the certified refutation pass ([`crate::absint`]) did to one
/// loop's dependence graph before scheduling: how much linear structure
/// the abstract interpretation recovered and how many bounded/
/// conservative memory edges fell to checked certificates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsintStats {
    /// Memory accesses in the loop body.
    pub mem_accs: u32,
    /// Accesses whose address resolved to an exact linear form.
    pub lin_addrs: u32,
    /// Induction variables recognized.
    pub ivs: u32,
    /// Bounded/conservative memory edges examined.
    pub considered: u32,
    /// Edges dropped (every supporting certificate checked).
    pub refuted: u32,
    /// Edges the analysis believed refutable but the independent
    /// certificate checker rejected — kept, and surfaced as A703.
    pub cert_failures: u32,
    /// Address forms demoted by the concrete spot-check (an analysis
    /// self-disagreement; the form is discarded, never used).
    pub spot_demotions: u32,
    /// Recurrence-limited MII before dropping edges (`Some` only when
    /// at least one edge fell).
    pub rec_mii_before: Option<u32>,
    /// Recurrence-limited MII after dropping edges.
    pub rec_mii_after: Option<u32>,
}

/// Everything the telemetry layer records about one loop; carried on
/// [`crate::LoopReport::stats`].
#[derive(Debug, Clone, Default)]
pub struct LoopStats {
    /// The scheduler's attempt log and SCC structure.
    pub sched: SchedTelemetry,
    /// Per-phase wall time.
    pub phases: PhaseTimes,
    /// Reduced conditional constructs in the body (including nested ones).
    pub reduced_conds: usize,
    /// Total rotating-register copies allocated by modulo variable
    /// expansion (0 when unpipelined or no variable needed expansion).
    pub mve_copies: u32,
    /// Nodes per pipeline stage of the achieved schedule (empty when the
    /// loop was not pipelined).
    pub stage_histogram: Vec<u32>,
    /// Dependence-edge counts by kind and provenance.
    pub memdeps: DepEdgeSummary,
    /// Refinement telemetry; `Some` only when the loop was pipelined
    /// under [`crate::CompileOptions::refine`].
    pub refine: Option<RefineStats>,
    /// Certified-refutation telemetry; `Some` only when the loop was
    /// compiled under [`crate::BuildOptions::absint_refute`].
    pub absint: Option<AbsintStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn att(ii: u32, failure: Option<AttemptFailure>) -> IiAttempt {
        let limiting = failure
            .is_none()
            .then_some(LimitingConstraint::Recurrence);
        IiAttempt { ii, failure, limiting }
    }

    #[test]
    fn abort_summary_aggregates_by_kind() {
        let t = SchedTelemetry {
            scc_count: 1,
            scc_sizes: vec![],
            attempts: vec![
                att(3, Some(AttemptFailure::ComponentPlacement { comp: 0, node: 2 })),
                att(4, Some(AttemptFailure::ComponentPlacement { comp: 1, node: 7 })),
                att(
                    5,
                    Some(AttemptFailure::Validation {
                        reason: "x".into(),
                    }),
                ),
                att(6, None),
            ],
            ..Default::default()
        };
        assert_eq!(t.abort_summary(), "component:2,validation:1");
        assert_eq!(t.attempt_range(), "3-6");
    }

    #[test]
    fn empty_telemetry_renders_dashes() {
        let t = SchedTelemetry::default();
        assert_eq!(t.abort_summary(), "-");
        assert_eq!(t.attempt_range(), "-");
    }

    #[test]
    fn non_contiguous_attempts_listed() {
        let t = SchedTelemetry {
            scc_count: 0,
            scc_sizes: vec![],
            attempts: vec![att(4, None), att(8, None), att(6, None)],
            ..Default::default()
        };
        assert_eq!(t.attempt_range(), "4,8,6");
    }

    #[test]
    fn phase_times_total_and_row() {
        let p = PhaseTimes {
            reduce: Duration::from_micros(1),
            build: Duration::from_micros(2),
            bounds: Duration::from_micros(3),
            search: Duration::from_micros(4),
            expand: Duration::from_micros(5),
            emit: Duration::from_micros(6),
        };
        assert_eq!(p.total(), Duration::from_micros(21));
        assert_eq!(p.as_micros_row(), "1:2:3:4:5:6");
    }
}
