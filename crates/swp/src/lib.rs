//! Software pipelining for VLIW machines — the core of the reproduction of
//! Lam, *Software Pipelining: An Effective Scheduling Technique for VLIW
//! Machines* (PLDI 1988).
//!
//! The crate implements, from scratch:
//!
//! * dependence-graph construction over loop bodies, with `(iteration
//!   difference, delay)` edge attributes ([`build_graph`]);
//! * the **modulo scheduler** (§2.2): MII lower bounds, Tarjan SCC
//!   decomposition, symbolic all-points longest paths, per-component
//!   scheduling within precedence-constrained ranges, list scheduling of
//!   the acyclic condensation against the modulo resource reservation
//!   table, and linear search over initiation intervals
//!   ([`modulo_schedule`]);
//! * **modulo variable expansion** (§2.3): rotating register copies and
//!   kernel unrolling, with both of the paper's unroll policies
//!   ([`expand`]);
//! * **code generation** (§2.4): prolog/kernel/epilog emission with the
//!   guarded unpipelined remainder loop for unknown trip counts
//!   ([`compile`]);
//! * **hierarchical reduction** (Part II): conditionals inside innermost
//!   loops are scheduled, reduced to single nodes, pipelined, and expanded
//!   into both-arm code at emission time;
//! * the **local-compaction baseline** the paper compares against
//!   ([`compact_block`], or [`compile`] with `pipeline: false`).
//!
//! # Examples
//!
//! ```
//! use ir::{ProgramBuilder, TripCount};
//! use machine::presets;
//! use swp::{compile, CompileOptions};
//!
//! // a[i] = a[i] + 1.0 over 64 elements.
//! let mut b = ProgramBuilder::new("vinc");
//! let a = b.array("a", 64);
//! b.for_counted(TripCount::Const(64), |b, i| {
//!     let addr = b.elem_addr(a, i.into(), 1, 0);
//!     let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
//!     let y = b.fadd(x.into(), 1.0f32.into());
//!     b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
//! });
//! let p = b.finish();
//!
//! let compiled = compile(&p, &presets::toy_vector(), &CompileOptions::default()).unwrap();
//! let report = &compiled.reports[0];
//! // The paper's §2 example pipelines at one iteration per cycle.
//! assert_eq!(report.ii, Some(1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod absint;
mod build;
pub mod cache;
pub mod canon;
mod code;
mod compact;
pub mod driver;
mod emit;
mod graph;
mod hier;
mod mii;
mod modsched;
mod mrt;
mod mve;
pub mod optimal;
mod pathalg;
mod pressure;
pub mod prune;
pub mod refine;
mod scc;
mod schedule;
pub mod service;
pub mod stats;
pub mod symex;
pub mod testkit;
mod unroll;
pub mod verify;
pub mod viz;
pub mod wire;

pub use build::{build_graph, BuildOptions};
pub use code::{Block, BlockId, Terminator, VliwProgram, Word};
pub use compact::{compact_block, compact_graph, linear_place, sequentialize, CompactedRegion};
pub use driver::{compile_batch, BatchJob, BatchResult};
pub use emit::{
    compile, compile_with_scratch, CompileError, CompileOptions, CompiledProgram, LoopArtifacts,
    LoopReport, NotPipelined,
};
pub use build::build_item_graph;
pub use graph::{
    Access, DepEdge, DepGraph, DepKind, EdgeOrigin, Node, NodeId, NodeKind, PlacedItem,
    ReducedCond,
};
pub use hier::{reduce_stmts, reduce_stmts_with, stats as hier_stats, CondMode};
pub use mii::{rec_mii, res_mii, IllegalCycle, MiiReport, ZeroCapacity};
pub use modsched::{
    attempt_at, modulo_schedule, modulo_schedule_analyzed, modulo_schedule_telemetry, IiSearch,
    Priority, SchedAnalysis, SchedError, SchedOptions, SchedScratch, SchedTuning, ScheduleResult,
};
pub use refine::{
    refine, refine_with_witness, Improvement, RefineConfig, RefineMove, RefineOutcome,
};
pub use stats::{
    AbsintStats, AttemptFailure, DepEdgeSummary, IiAttempt, LimitingConstraint, LoopStats,
    PhaseTimes, RefineStats, SchedTelemetry,
};
pub use mrt::{LinearTable, ModuloTable};
pub use optimal::{certify, IiVerdict, OracleOptions, OracleOutcome, OracleResult};
pub use mve::{expand, Expansion, UnrollPolicy};
pub use pathalg::{DistSet, SccClosure};
pub use pressure::{register_pressure, PressureReport};
pub use prune::{dominated_edges, prune_dominated, PruneAnalysis};
pub use scc::{tarjan, SccDecomposition};
pub use schedule::Schedule;
pub use unroll::unroll_innermost;
