//! The daemon's wire format: length-prefixed binary frames carrying
//! `(program, machine description, compile options)` jobs in and rendered
//! artifacts plus provenance out.
//!
//! Everything here is std-only and versioned: a frame's payload starts
//! with a one-byte request/response tag, and the job encoding is preceded
//! by [`WIRE_VERSION`]. Integers are little-endian; strings are
//! `u32`-length-prefixed UTF-8. See DESIGN.md §14 for the frame grammar.
//!
//! The encoding is *exact*: it round-trips every field of the three job
//! components, and the byte region covering `(program, machine, options)`
//! — everything except the caller-chosen job name — doubles as the input
//! to the cache's exact fingerprint ([`crate::cache::CacheKey::exact`]).

use std::io::{self, Read, Write};

use ir::{
    Array, CmpPred, IfStmt, Imm, Loop, MemPattern, MemRef, Op, Opcode, Operand, Program, RegTable,
    Stmt, TripCount, Type, VReg,
};
use machine::{MachineBuilder, MachineDescription, OpClass, RegClass, ReservationTable, ResourceId, ResourceUse};

use crate::canon::Fnv64;
use crate::emit::CompileOptions;
use crate::hier::CondMode;
use crate::modsched::{IiSearch, Priority, SchedOptions};
use crate::mve::UnrollPolicy;
use crate::BuildOptions;

/// Version byte of the job encoding; bump on any layout change.
/// v2 appended [`CompileOptions::refine`] to the options encoding.
/// v3 appended [`BuildOptions::absint_refute`], so a refuting request can
/// never be answered from a cache entry compiled without refutation.
pub const WIRE_VERSION: u8 = 3;

/// Upper bound on one frame's payload (defensive: a corrupt length prefix
/// must not drive a giant allocation).
pub const MAX_FRAME: usize = 64 << 20;

/// A malformed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

type Result<T> = std::result::Result<T, WireError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(WireError(msg.into()))
}

// ---------------------------------------------------------------------------
// Frame I/O

/// Writes one `u32`-length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF before a length prefix.
///
/// # Errors
///
/// Propagates I/O errors; a length prefix above [`MAX_FRAME`] is reported
/// as [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Primitive encoding

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return err(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => err(format!("invalid bool byte {b}")),
        }
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn len(&mut self, what: &str) -> Result<usize> {
        let n = self.u32()? as usize;
        // Every element encodes to at least one byte; a count beyond the
        // remaining buffer is corrupt and must not drive the allocation.
        if n > self.buf.len() - self.pos {
            return err(format!("{what} count {n} exceeds remaining payload"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String> {
        let n = self.len("string byte")?;
        match std::str::from_utf8(self.take(n)?) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("invalid UTF-8 in string"),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>> {
        Ok(if self.bool()? { Some(self.u32()?) } else { None })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            out.push(1);
            put_u32(out, x);
        }
        None => out.push(0),
    }
}

// ---------------------------------------------------------------------------
// IR encoding

fn put_pred(out: &mut Vec<u8>, p: CmpPred) {
    out.push(match p {
        CmpPred::Eq => 0,
        CmpPred::Ne => 1,
        CmpPred::Lt => 2,
        CmpPred::Le => 3,
        CmpPred::Gt => 4,
        CmpPred::Ge => 5,
    });
}

fn get_pred(c: &mut Cursor) -> Result<CmpPred> {
    Ok(match c.u8()? {
        0 => CmpPred::Eq,
        1 => CmpPred::Ne,
        2 => CmpPred::Lt,
        3 => CmpPred::Le,
        4 => CmpPred::Gt,
        5 => CmpPred::Ge,
        b => return err(format!("invalid compare predicate {b}")),
    })
}

fn put_opcode(out: &mut Vec<u8>, op: Opcode) {
    use Opcode::*;
    let tag: u8 = match op {
        FAdd => 0,
        FSub => 1,
        FMul => 2,
        FDiv => 3,
        FSqrt => 4,
        FNeg => 5,
        FAbs => 6,
        FMin => 7,
        FMax => 8,
        FCmp(_) => 9,
        ItoF => 10,
        FtoI => 11,
        Add => 12,
        Sub => 13,
        Mul => 14,
        Div => 15,
        Rem => 16,
        And => 17,
        Or => 18,
        Xor => 19,
        Shl => 20,
        Shr => 21,
        ICmp(_) => 22,
        Select => 23,
        Copy => 24,
        Const => 25,
        Load => 26,
        Store => 27,
        QPop => 28,
        QPush => 29,
    };
    out.push(tag);
    match op {
        FCmp(p) | ICmp(p) => put_pred(out, p),
        _ => {}
    }
}

fn get_opcode(c: &mut Cursor) -> Result<Opcode> {
    use Opcode::*;
    Ok(match c.u8()? {
        0 => FAdd,
        1 => FSub,
        2 => FMul,
        3 => FDiv,
        4 => FSqrt,
        5 => FNeg,
        6 => FAbs,
        7 => FMin,
        8 => FMax,
        9 => FCmp(get_pred(c)?),
        10 => ItoF,
        11 => FtoI,
        12 => Add,
        13 => Sub,
        14 => Mul,
        15 => Div,
        16 => Rem,
        17 => And,
        18 => Or,
        19 => Xor,
        20 => Shl,
        21 => Shr,
        22 => ICmp(get_pred(c)?),
        23 => Select,
        24 => Copy,
        25 => Const,
        26 => Load,
        27 => Store,
        28 => QPop,
        29 => QPush,
        b => return err(format!("invalid opcode tag {b}")),
    })
}

fn put_operand(out: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            out.push(0);
            put_u32(out, r.0);
        }
        Operand::Imm(Imm::F(v)) => {
            out.push(1);
            put_u32(out, v.to_bits());
        }
        Operand::Imm(Imm::I(v)) => {
            out.push(2);
            put_u32(out, *v as u32);
        }
    }
}

fn get_operand(c: &mut Cursor) -> Result<Operand> {
    Ok(match c.u8()? {
        0 => Operand::Reg(VReg(c.u32()?)),
        1 => Operand::Imm(Imm::F(f32::from_bits(c.u32()?))),
        2 => Operand::Imm(Imm::I(c.u32()? as i32)),
        b => return err(format!("invalid operand tag {b}")),
    })
}

fn put_mem(out: &mut Vec<u8>, m: &MemRef) {
    put_u32(out, m.array.0);
    match m.pattern {
        MemPattern::Affine { stride, offset, inv } => {
            out.push(0);
            out.extend_from_slice(&stride.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            put_opt_u32(out, inv);
        }
        MemPattern::Invariant => out.push(1),
        MemPattern::Unknown => out.push(2),
    }
}

fn get_mem(c: &mut Cursor) -> Result<MemRef> {
    let array = ir::ArrayId(c.u32()?);
    let pattern = match c.u8()? {
        0 => MemPattern::Affine {
            stride: c.i64()?,
            offset: c.i64()?,
            inv: c.opt_u32()?,
        },
        1 => MemPattern::Invariant,
        2 => MemPattern::Unknown,
        b => return err(format!("invalid memory pattern tag {b}")),
    };
    Ok(MemRef { array, pattern })
}

fn put_op(out: &mut Vec<u8>, op: &Op) {
    put_opcode(out, op.opcode);
    put_opt_u32(out, op.dst.map(|r| r.0));
    put_u32(out, op.srcs.len() as u32);
    for s in &op.srcs {
        put_operand(out, s);
    }
    match &op.mem {
        Some(m) => {
            out.push(1);
            put_mem(out, m);
        }
        None => out.push(0),
    }
    out.push(op.channel);
}

fn get_op(c: &mut Cursor) -> Result<Op> {
    let opcode = get_opcode(c)?;
    let dst = c.opt_u32()?.map(VReg);
    let n = c.len("operand")?;
    let mut srcs = Vec::with_capacity(n);
    for _ in 0..n {
        srcs.push(get_operand(c)?);
    }
    let mem = if c.bool()? { Some(get_mem(c)?) } else { None };
    let channel = c.u8()?;
    if srcs.len() != opcode.arity() {
        return err(format!(
            "opcode {opcode} expects {} sources, frame carries {}",
            opcode.arity(),
            srcs.len()
        ));
    }
    if dst.is_some() != opcode.has_dst() {
        return err(format!("opcode {opcode} destination presence mismatch"));
    }
    Ok(Op {
        opcode,
        dst,
        srcs,
        mem,
        channel,
    })
}

fn put_stmts(out: &mut Vec<u8>, stmts: &[Stmt]) {
    put_u32(out, stmts.len() as u32);
    for s in stmts {
        match s {
            Stmt::Op(op) => {
                out.push(0);
                put_op(out, op);
            }
            Stmt::Loop(l) => {
                out.push(1);
                match l.trip {
                    TripCount::Const(n) => {
                        out.push(0);
                        put_u32(out, n);
                    }
                    TripCount::Reg(r) => {
                        out.push(1);
                        put_u32(out, r.0);
                    }
                }
                put_stmts(out, &l.body);
            }
            Stmt::If(i) => {
                out.push(2);
                put_u32(out, i.cond.0);
                put_stmts(out, &i.then_body);
                put_stmts(out, &i.else_body);
            }
        }
    }
}

fn get_stmts(c: &mut Cursor, depth: u32) -> Result<Vec<Stmt>> {
    if depth > 64 {
        return err("statement nesting deeper than 64");
    }
    let n = c.len("statement")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match c.u8()? {
            0 => Stmt::Op(get_op(c)?),
            1 => {
                let trip = match c.u8()? {
                    0 => TripCount::Const(c.u32()?),
                    1 => TripCount::Reg(VReg(c.u32()?)),
                    b => return err(format!("invalid trip tag {b}")),
                };
                Stmt::Loop(Loop {
                    trip,
                    body: get_stmts(c, depth + 1)?,
                })
            }
            2 => Stmt::If(IfStmt {
                cond: VReg(c.u32()?),
                then_body: get_stmts(c, depth + 1)?,
                else_body: get_stmts(c, depth + 1)?,
            }),
            b => return err(format!("invalid statement tag {b}")),
        });
    }
    Ok(out)
}

/// Serializes a program.
pub(crate) fn put_program(out: &mut Vec<u8>, p: &Program) {
    put_string(out, &p.name);
    put_u32(out, p.regs.len() as u32);
    for r in p.regs.iter() {
        out.push(match p.regs.ty(r) {
            Type::F32 => 0,
            Type::I32 => 1,
        });
        match p.regs.name(r) {
            Some(n) => {
                out.push(1);
                put_string(out, n);
            }
            None => out.push(0),
        }
    }
    put_u32(out, p.arrays.len() as u32);
    for a in &p.arrays {
        put_string(out, &a.name);
        put_u32(out, a.base);
        put_u32(out, a.len);
    }
    put_u32(out, p.mem_size);
    put_stmts(out, &p.body);
}

/// Deserializes a program (structurally; semantic validation is the
/// compiler's job).
///
/// # Errors
///
/// Returns [`WireError`] on any malformed or truncated field.
pub(crate) fn get_program(c: &mut Cursor) -> Result<Program> {
    let name = c.string()?;
    let nregs = c.len("register")?;
    let mut regs = RegTable::new();
    for _ in 0..nregs {
        let ty = match c.u8()? {
            0 => Type::F32,
            1 => Type::I32,
            b => return err(format!("invalid type tag {b}")),
        };
        if c.bool()? {
            let n = c.string()?;
            regs.alloc_named(ty, n);
        } else {
            regs.alloc(ty);
        }
    }
    let narrays = c.len("array")?;
    let mut arrays = Vec::with_capacity(narrays);
    for _ in 0..narrays {
        arrays.push(Array {
            name: c.string()?,
            base: c.u32()?,
            len: c.u32()?,
        });
    }
    let mem_size = c.u32()?;
    let body = get_stmts(c, 0)?;
    Ok(Program {
        name,
        regs,
        arrays,
        mem_size,
        body,
    })
}

// ---------------------------------------------------------------------------
// Machine encoding

fn put_reservation(out: &mut Vec<u8>, t: &ReservationTable) {
    put_u32(out, t.len() as u32);
    for row in t.rows() {
        let pairs: Vec<(ResourceId, u16)> = row.iter().collect();
        put_u32(out, pairs.len() as u32);
        for (rid, units) in pairs {
            put_u32(out, rid.0);
            out.extend_from_slice(&units.to_le_bytes());
        }
    }
}

fn get_reservation(c: &mut Cursor) -> Result<ReservationTable> {
    let rows = c.len("reservation row")?;
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let pairs = c.len("reservation pair")?;
        let mut row = ResourceUse::none();
        for _ in 0..pairs {
            let rid = ResourceId(c.u32()?);
            row.add(rid, c.u16()?);
        }
        out.push(row);
    }
    Ok(ReservationTable::from_rows(out))
}

/// Serializes a machine description.
pub(crate) fn put_machine(out: &mut Vec<u8>, m: &MachineDescription) {
    put_string(out, m.name());
    put_u32(out, m.num_resources() as u32);
    for r in m.resources() {
        put_string(out, &r.name);
        out.extend_from_slice(&r.count.to_le_bytes());
    }
    for class in OpClass::ALL {
        let t = m.timing(class);
        put_u32(out, t.latency);
        put_reservation(out, &t.reservation);
    }
    for class in [RegClass::Float, RegClass::Int] {
        put_opt_u32(out, m.reg_file_size(class));
    }
    put_opt_u32(out, m.branch_resource().map(|r| r.0));
}

/// Deserializes a machine description, revalidating it through
/// [`MachineBuilder::build`] (oversubscribed reservation tables, duplicate
/// resources and missing timings are rejected exactly as for a
/// hand-assembled machine).
///
/// # Errors
///
/// Returns [`WireError`] on malformed bytes or a description that fails
/// builder validation.
pub(crate) fn get_machine(c: &mut Cursor) -> Result<MachineDescription> {
    let name = c.string()?;
    let mut b = MachineBuilder::new(name);
    let nres = c.len("resource")?;
    for _ in 0..nres {
        let rname = c.string()?;
        let count = c.u16()?;
        b.resource(rname, count);
    }
    for class in OpClass::ALL {
        let latency = c.u32()?;
        let reservation = get_reservation(c)?;
        b.timing(class, latency, reservation);
    }
    for class in [RegClass::Float, RegClass::Int] {
        if let Some(size) = c.opt_u32()? {
            b.reg_file(class, size);
        }
    }
    if let Some(r) = c.opt_u32()? {
        b.branch_resource(ResourceId(r));
    }
    b.build().map_err(|e| WireError(e.to_string()))
}

// ---------------------------------------------------------------------------
// Options encoding

/// Serializes compile options.
pub(crate) fn put_options(out: &mut Vec<u8>, o: &CompileOptions) {
    out.push(o.pipeline as u8);
    out.push(o.build.loop_carried as u8);
    out.push(o.build.enable_mve as u8);
    out.push(o.build.prune_dominated as u8);
    put_opt_u32(out, o.build.trip);
    out.push(match o.sched.search {
        IiSearch::Linear => 0,
        IiSearch::Binary => 1,
    });
    out.push(match o.sched.priority {
        Priority::Height => 0,
        Priority::SourceOrder => 1,
    });
    put_opt_u32(out, o.sched.max_ii);
    out.push(match o.unroll_policy {
        UnrollPolicy::MinRegisters => 0,
        UnrollPolicy::MinCodeSize => 1,
    });
    put_u32(out, o.body_len_threshold);
    out.extend_from_slice(&o.near_bound_fraction.to_bits().to_le_bytes());
    out.push(o.respect_reg_files as u8);
    out.push(o.hierarchical as u8);
    out.push(match o.cond_mode {
        CondMode::Union => 0,
        CondMode::Exclusive => 1,
    });
    out.push(o.fuse_epilog as u8);
    out.push(o.refine as u8);
    out.push(o.build.absint_refute as u8);
}

/// Deserializes compile options.
///
/// # Errors
///
/// Returns [`WireError`] on malformed bytes.
pub(crate) fn get_options(c: &mut Cursor) -> Result<CompileOptions> {
    // Fields are read as locals in wire order: later versions append to the
    // end of the stream, which is not struct-literal order.
    let pipeline = c.bool()?;
    let loop_carried = c.bool()?;
    let enable_mve = c.bool()?;
    let prune_dominated = c.bool()?;
    let trip = c.opt_u32()?;
    let search = match c.u8()? {
        0 => IiSearch::Linear,
        1 => IiSearch::Binary,
        b => return err(format!("invalid search tag {b}")),
    };
    let priority = match c.u8()? {
        0 => Priority::Height,
        1 => Priority::SourceOrder,
        b => return err(format!("invalid priority tag {b}")),
    };
    let max_ii = c.opt_u32()?;
    let unroll_policy = match c.u8()? {
        0 => UnrollPolicy::MinRegisters,
        1 => UnrollPolicy::MinCodeSize,
        b => return err(format!("invalid unroll policy tag {b}")),
    };
    let body_len_threshold = c.u32()?;
    let near_bound_fraction = f64::from_bits(c.u64()?);
    let respect_reg_files = c.bool()?;
    let hierarchical = c.bool()?;
    let cond_mode = match c.u8()? {
        0 => CondMode::Union,
        1 => CondMode::Exclusive,
        b => return err(format!("invalid cond mode tag {b}")),
    };
    let fuse_epilog = c.bool()?;
    let refine = c.bool()?;
    let absint_refute = c.bool()?;
    Ok(CompileOptions {
        pipeline,
        build: BuildOptions {
            loop_carried,
            enable_mve,
            prune_dominated,
            trip,
            absint_refute,
        },
        sched: SchedOptions {
            search,
            priority,
            max_ii,
        },
        unroll_policy,
        body_len_threshold,
        near_bound_fraction,
        respect_reg_files,
        hierarchical,
        cond_mode,
        fuse_epilog,
        refine,
    })
}

// ---------------------------------------------------------------------------
// Requests and responses

/// One compile job as it travels over the wire.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Caller-chosen identifier, echoed in the reply. Not part of any
    /// cache key.
    pub name: String,
    /// The program to compile.
    pub program: Program,
    /// The target machine.
    pub mach: MachineDescription,
    /// Compiler options.
    pub opts: CompileOptions,
}

/// A job plus the FNV fingerprint of its `(program, machine, options)`
/// byte region — the exact half of the cache key, computed over the very
/// bytes that came off the wire.
#[derive(Debug, Clone)]
pub struct DecodedJob {
    /// The decoded job.
    pub job: JobRequest,
    /// FNV-1a over the job's content bytes (name excluded).
    pub exact: u64,
}

fn put_job(out: &mut Vec<u8>, job: &JobRequest) {
    put_string(out, &job.name);
    let mut body = Vec::new();
    put_program(&mut body, &job.program);
    put_machine(&mut body, &job.mach);
    put_options(&mut body, &job.opts);
    put_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

fn get_job(c: &mut Cursor) -> Result<DecodedJob> {
    let name = c.string()?;
    let body_len = c.len("job body byte")?;
    let body = c.take(body_len)?;
    let mut exact_h = Fnv64::new();
    std::hash::Hasher::write(&mut exact_h, body);
    let exact = exact_h.finish_mixed();
    let mut bc = Cursor::new(body);
    let program = get_program(&mut bc)?;
    let mach = get_machine(&mut bc)?;
    let opts = get_options(&mut bc)?;
    if bc.pos != body.len() {
        return err(format!(
            "job body has {} trailing bytes",
            body.len() - bc.pos
        ));
    }
    Ok(DecodedJob {
        job: JobRequest {
            name,
            program,
            mach,
            opts,
        },
        exact,
    })
}

/// A request frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile one job.
    Compile(Box<JobRequest>),
    /// Compile a batch; the reply carries one [`JobReply`] per job, in job
    /// order, and misses are sharded across the daemon's worker pool.
    CompileBatch(Vec<JobRequest>),
    /// Ask for a cache/throughput statistics snapshot.
    Stats,
    /// Ask the daemon to exit after replying.
    Shutdown,
}

const REQ_COMPILE: u8 = 1;
const REQ_BATCH: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_VERSION];
        match self {
            Request::Compile(job) => {
                out.push(REQ_COMPILE);
                put_job(&mut out, job);
            }
            Request::CompileBatch(jobs) => {
                out.push(REQ_BATCH);
                put_u32(&mut out, jobs.len() as u32);
                for j in jobs {
                    put_job(&mut out, j);
                }
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
        out
    }
}

/// A decoded request: jobs carry their exact fingerprints along.
#[derive(Debug)]
pub enum DecodedRequest {
    /// Compile one job.
    Compile(Box<DecodedJob>),
    /// Compile a batch.
    CompileBatch(Vec<DecodedJob>),
    /// Statistics snapshot.
    Stats,
    /// Shut down.
    Shutdown,
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// Returns [`WireError`] on version mismatch or malformed bytes.
pub fn decode_request(payload: &[u8]) -> Result<DecodedRequest> {
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return err(format!(
            "wire version {version} unsupported (daemon speaks {WIRE_VERSION})"
        ));
    }
    Ok(match c.u8()? {
        REQ_COMPILE => DecodedRequest::Compile(Box::new(get_job(&mut c)?)),
        REQ_BATCH => {
            let n = c.len("job")?;
            let mut jobs = Vec::with_capacity(n);
            for _ in 0..n {
                jobs.push(get_job(&mut c)?);
            }
            DecodedRequest::CompileBatch(jobs)
        }
        REQ_STATS => DecodedRequest::Stats,
        REQ_SHUTDOWN => DecodedRequest::Shutdown,
        b => return err(format!("invalid request tag {b}")),
    })
}

/// Where a reply's artifact came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the schedule cache.
    Hit,
    /// Compiled fresh (and inserted).
    Miss,
}

/// Provenance attached to every compiled reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// Cache hit or fresh compile.
    pub source: Source,
    /// Canonical (node-order-independent) content address.
    pub canon: u64,
    /// Exact fingerprint of the request's content bytes.
    pub exact: u64,
    /// True when this hit was re-verified against a fresh compile by the
    /// sampling revalidator (always false for misses).
    pub revalidated: bool,
}

/// One job's reply: the rendered artifacts plus provenance, or a
/// compile-time error.
#[derive(Debug, Clone)]
pub struct JobReply {
    /// The job's name, echoed.
    pub name: String,
    /// Rendered artifacts + provenance, or the compile error.
    pub outcome: std::result::Result<(Provenance, String), String>,
}

/// A response frame.
#[derive(Debug, Clone)]
pub enum Response {
    /// Per-job replies, in job order.
    Jobs(Vec<JobReply>),
    /// Statistics snapshot (human-readable, stable line format).
    Stats(String),
    /// The daemon acknowledges shutdown.
    Bye,
    /// The request itself was malformed.
    Error(String),
}

const RESP_JOBS: u8 = 1;
const RESP_STATS: u8 = 2;
const RESP_BYE: u8 = 3;
const RESP_ERROR: u8 = 0;

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![WIRE_VERSION];
        match self {
            Response::Jobs(replies) => {
                out.push(RESP_JOBS);
                put_u32(&mut out, replies.len() as u32);
                for r in replies {
                    put_string(&mut out, &r.name);
                    match &r.outcome {
                        Ok((prov, body)) => {
                            out.push(1);
                            out.push(match prov.source {
                                Source::Hit => 1,
                                Source::Miss => 0,
                            });
                            out.push(prov.revalidated as u8);
                            out.extend_from_slice(&prov.canon.to_le_bytes());
                            out.extend_from_slice(&prov.exact.to_le_bytes());
                            put_string(&mut out, body);
                        }
                        Err(e) => {
                            out.push(0);
                            put_string(&mut out, e);
                        }
                    }
                }
            }
            Response::Stats(s) => {
                out.push(RESP_STATS);
                put_string(&mut out, s);
            }
            Response::Bye => out.push(RESP_BYE),
            Response::Error(e) => {
                out.push(RESP_ERROR);
                put_string(&mut out, e);
            }
        }
        out
    }

    /// Decodes a response frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on version mismatch or malformed bytes.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut c = Cursor::new(payload);
        let version = c.u8()?;
        if version != WIRE_VERSION {
            return err(format!("response wire version {version} unsupported"));
        }
        Ok(match c.u8()? {
            RESP_JOBS => {
                let n = c.len("reply")?;
                let mut replies = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = c.string()?;
                    let outcome = match c.u8()? {
                        1 => {
                            let source = match c.u8()? {
                                1 => Source::Hit,
                                0 => Source::Miss,
                                b => return err(format!("invalid source tag {b}")),
                            };
                            let revalidated = c.bool()?;
                            let canon = c.u64()?;
                            let exact = c.u64()?;
                            let body = c.string()?;
                            Ok((
                                Provenance {
                                    source,
                                    canon,
                                    exact,
                                    revalidated,
                                },
                                body,
                            ))
                        }
                        0 => Err(c.string()?),
                        b => return err(format!("invalid outcome tag {b}")),
                    };
                    replies.push(JobReply { name, outcome });
                }
                Response::Jobs(replies)
            }
            RESP_STATS => Response::Stats(c.string()?),
            RESP_BYE => Response::Bye,
            RESP_ERROR => Response::Error(c.string()?),
            b => return err(format!("invalid response tag {b}")),
        })
    }
}

/// Encodes a job and computes its exact fingerprint the same way the
/// daemon will (over the content byte region, name excluded) — lets
/// clients and tests predict cache addresses.
pub fn job_exact_fingerprint(job: &JobRequest) -> u64 {
    let mut body = Vec::new();
    put_program(&mut body, &job.program);
    put_machine(&mut body, &job.mach);
    put_options(&mut body, &job.opts);
    let mut h = Fnv64::new();
    std::hash::Hasher::write(&mut h, &body);
    h.finish_mixed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{ProgramBuilder, TripCount};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("wiretest");
        let a = b.array("a", 64);
        b.for_counted(TripCount::Const(64), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
            let c = b.icmp(CmpPred::Gt, x.into(), ir::Imm::I(0).into());
            b.if_else(
                c,
                |b| {
                    let y = b.fadd(x.into(), 1.0f32.into());
                    b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
                },
                |b| {
                    b.store(addr.into(), 0.0f32.into(), ir::MemRef::affine(a, 1, 0));
                },
            );
        });
        b.finish()
    }

    #[test]
    fn program_roundtrip() {
        let p = sample_program();
        let mut bytes = Vec::new();
        put_program(&mut bytes, &p);
        let q = get_program(&mut Cursor::new(&bytes)).unwrap();
        assert_eq!(p.name, q.name);
        assert_eq!(p.body, q.body);
        assert_eq!(p.arrays, q.arrays);
        assert_eq!(p.mem_size, q.mem_size);
        assert_eq!(p.regs.len(), q.regs.len());
        for r in p.regs.iter() {
            assert_eq!(p.regs.ty(r), q.regs.ty(r));
            assert_eq!(p.regs.name(r), q.regs.name(r));
        }
        assert_eq!(p.to_string(), q.to_string());
    }

    #[test]
    fn machine_roundtrip() {
        for m in [
            machine::presets::warp_cell(),
            machine::presets::test_machine(),
            machine::presets::toy_vector(),
            machine::presets::sequential(),
        ] {
            let mut bytes = Vec::new();
            put_machine(&mut bytes, &m);
            let q = get_machine(&mut Cursor::new(&bytes)).unwrap();
            assert_eq!(
                crate::canon::machine_fingerprint(&m),
                crate::canon::machine_fingerprint(&q),
                "{} round-trips",
                m.name()
            );
        }
    }

    #[test]
    fn options_roundtrip() {
        let variants = [
            CompileOptions::default(),
            CompileOptions {
                pipeline: false,
                body_len_threshold: 7,
                near_bound_fraction: 0.25,
                unroll_policy: UnrollPolicy::MinRegisters,
                cond_mode: CondMode::Exclusive,
                ..Default::default()
            },
            CompileOptions {
                sched: SchedOptions {
                    search: IiSearch::Binary,
                    priority: Priority::SourceOrder,
                    max_ii: Some(12),
                },
                build: BuildOptions {
                    prune_dominated: true,
                    trip: Some(5),
                    ..Default::default()
                },
                ..Default::default()
            },
            CompileOptions {
                build: BuildOptions {
                    absint_refute: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        ];
        for o in &variants {
            let mut bytes = Vec::new();
            put_options(&mut bytes, o);
            let q = get_options(&mut Cursor::new(&bytes)).unwrap();
            assert_eq!(
                crate::canon::options_fingerprint(o),
                crate::canon::options_fingerprint(&q)
            );
        }
    }

    #[test]
    fn request_roundtrip_and_exact_fingerprint() {
        let job = JobRequest {
            name: "k1@warp+pipe".into(),
            program: sample_program(),
            mach: machine::presets::warp_cell(),
            opts: CompileOptions::default(),
        };
        let payload = Request::Compile(Box::new(job.clone())).encode();
        let decoded = match decode_request(&payload).unwrap() {
            DecodedRequest::Compile(d) => d,
            other => panic!("wrong variant {other:?}"),
        };
        assert_eq!(decoded.job.name, job.name);
        assert_eq!(decoded.job.program.to_string(), job.program.to_string());
        assert_eq!(decoded.exact, job_exact_fingerprint(&job));

        // The name is excluded from the exact fingerprint.
        let renamed = JobRequest {
            name: "other-name".into(),
            ..job.clone()
        };
        assert_eq!(job_exact_fingerprint(&renamed), decoded.exact);
    }

    #[test]
    fn response_roundtrip() {
        let r = Response::Jobs(vec![
            JobReply {
                name: "a".into(),
                outcome: Ok((
                    Provenance {
                        source: Source::Hit,
                        canon: 7,
                        exact: 9,
                        revalidated: true,
                    },
                    "body text".into(),
                )),
            },
            JobReply {
                name: "b".into(),
                outcome: Err("compile error: nope".into()),
            },
        ]);
        let decoded = Response::decode(&r.encode()).unwrap();
        match decoded {
            Response::Jobs(replies) => {
                assert_eq!(replies.len(), 2);
                let (prov, body) = replies[0].outcome.as_ref().unwrap();
                assert_eq!(prov.source, Source::Hit);
                assert!(prov.revalidated);
                assert_eq!((prov.canon, prov.exact), (7, 9));
                assert_eq!(body, "body text");
                assert!(replies[1].outcome.is_err());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn truncated_and_corrupt_payloads_are_rejected() {
        let job = JobRequest {
            name: "x".into(),
            program: sample_program(),
            mach: machine::presets::test_machine(),
            opts: CompileOptions::default(),
        };
        let payload = Request::Compile(Box::new(job)).encode();
        for cut in [0, 1, 2, payload.len() / 2, payload.len() - 1] {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "truncation at {cut} must fail cleanly"
            );
        }
        let mut bad_version = payload.clone();
        bad_version[0] = 99;
        assert!(decode_request(&bad_version).is_err());
        let mut bad_tag = payload;
        bad_tag[1] = 200;
        assert!(decode_request(&bad_tag).is_err());
    }

    #[test]
    fn frame_io_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // Oversized length prefix is rejected without allocating.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }
}
