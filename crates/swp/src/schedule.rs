//! Schedules and their validation.
//!
//! A modulo schedule assigns each node an issue cycle within the iteration;
//! iteration `k` issues node `n` at absolute cycle `k * ii + time(n)`. The
//! validator re-checks *every* dependence edge and the full modulo resource
//! table from scratch — the scheduler's heuristics are never trusted.

use std::fmt;

use machine::MachineDescription;

use crate::graph::{DepGraph, NodeId};
use crate::mrt::ModuloTable;

/// A modulo schedule for one loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    times: Vec<i64>,
    ii: u32,
}

impl Schedule {
    /// Wraps raw issue times. Times are normalized by a multiple of `ii`
    /// so the earliest lands in `[0, ii)` — shifting by whole intervals
    /// keeps every node on its modulo row, so placement-time row
    /// decisions (resource rows, the reduced-construct no-wrap rule)
    /// survive normalization. Schedules whose raw minimum is 0 — every
    /// unperturbed scheduler run — come through byte-identical.
    pub fn new(mut times: Vec<i64>, ii: u32) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        if let Some(&min) = times.iter().min() {
            let shift = min.div_euclid(ii as i64) * ii as i64;
            if shift != 0 {
                for t in &mut times {
                    *t -= shift;
                }
            }
        }
        Schedule { times, ii }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Issue cycle of a node within its iteration.
    pub fn time(&self, n: NodeId) -> i64 {
        self.times[n.index()]
    }

    /// All issue times, indexed by node.
    pub fn times(&self) -> &[i64] {
        &self.times
    }

    /// Schedule length: one iteration spans cycles `[0, len)`, counting
    /// each node's occupancy.
    pub fn len_with(&self, g: &DepGraph) -> u32 {
        g.node_ids()
            .map(|n| self.time(n) + g.node(n).len as i64)
            .max()
            .unwrap_or(0)
            .max(self.ii as i64) as u32
    }

    /// Number of pipeline stages: `ceil(len / ii)`. The prolog starts
    /// `stages - 1` iterations before the steady state is reached.
    pub fn stages(&self, g: &DepGraph) -> u32 {
        self.len_with(g).div_ceil(self.ii).max(1)
    }

    /// Nodes issued per pipeline stage (stage = issue cycle / ii). The
    /// vector has [`stages`](Self::stages) entries; a back-loaded
    /// histogram means most work drains in the epilog.
    pub fn stage_histogram(&self, g: &DepGraph) -> Vec<u32> {
        let mut hist = vec![0u32; self.stages(g) as usize];
        for n in g.node_ids() {
            hist[(self.time(n) / self.ii as i64) as usize] += 1;
        }
        hist
    }

    /// Checks every dependence edge and the modulo resource table.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, g: &DepGraph, mach: &MachineDescription) -> Result<(), String> {
        if self.times.len() != g.num_nodes() {
            return Err(format!(
                "schedule covers {} nodes, graph has {}",
                self.times.len(),
                g.num_nodes()
            ));
        }
        for e in g.edges() {
            let lhs = self.time(e.to) - self.time(e.from);
            let rhs = e.delay - (self.ii as i64) * (e.omega as i64);
            if lhs < rhs {
                return Err(format!(
                    "edge {} -> {} ({}, omega={}, d={}) violated: {} - {} < {}",
                    e.from,
                    e.to,
                    e.kind,
                    e.omega,
                    e.delay,
                    self.time(e.to),
                    self.time(e.from),
                    rhs
                ));
            }
        }
        let mut table = ModuloTable::new(mach, self.ii);
        for n in g.node_ids() {
            let res = &g.node(n).reservation;
            if !table.fits(res, self.time(n)) {
                return Err(format!(
                    "modulo resource conflict placing {n} at cycle {}",
                    self.time(n)
                ));
            }
            table.place(res, self.time(n));
        }
        // Reduced constructs must not straddle the II boundary (the
        // emitter splits the word stream at their rows). Times are
        // normalized to min 0 by `new`, which shifts every modulo row
        // when the raw minimum was not a multiple of the II — so this is
        // checked on the final rows, not trusted from placement.
        for n in g.node_ids() {
            let node = g.node(n);
            if node.needs_no_wrap()
                && self.time(n).rem_euclid(self.ii as i64) + node.len as i64 > self.ii as i64
            {
                return Err(format!(
                    "reduced construct {n} (len {}) wraps the II boundary at cycle {}",
                    node.len,
                    self.time(n)
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule (ii = {})", self.ii)?;
        let mut order: Vec<usize> = (0..self.times.len()).collect();
        order.sort_by_key(|&i| (self.times[i], i));
        for i in order {
            writeln!(f, "  t={:>4}: n{}", self.times[i], i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepEdge, DepKind, Node};
    use ir::{Imm, Op, Opcode, VReg};
    use machine::presets::test_machine;
    use machine::OpClass;

    fn two_adds() -> (DepGraph, MachineDescription) {
        let m = test_machine();
        let mut g = DepGraph::new();
        let res = m.reservation(OpClass::FloatAdd).clone();
        let mk = || {
            Node::op(
                Op::new(
                    Opcode::FAdd,
                    Some(VReg(0)),
                    vec![Imm::F(0.0).into(), Imm::F(0.0).into()],
                ),
                res.clone(),
            )
        };
        let a = g.add_node(mk());
        let b = g.add_node(mk());
        g.add_edge(DepEdge::new(a, b, 0, 2, DepKind::True));
        (g, m)
    }

    #[test]
    fn valid_schedule_passes() {
        // Two adds on one adder: ii = 2 with issue cycles 0 and 3 keeps
        // both the dependence (d = 2) and the modulo rows (0 and 1) happy.
        let (g, m) = two_adds();
        let s = Schedule::new(vec![0, 3], 2);
        assert!(s.validate(&g, &m).is_ok());
    }

    #[test]
    fn precedence_violation_caught() {
        let (g, m) = two_adds();
        let s = Schedule::new(vec![0, 1], 2);
        let err = s.validate(&g, &m).unwrap_err();
        assert!(err.contains("violated"), "{err}");
    }

    #[test]
    fn resource_violation_caught() {
        let (g, m) = two_adds();
        // At ii=2, cycles 0 and 2 share a modulo row on the single adder.
        let s = Schedule::new(vec![0, 2], 2);
        let err = s.validate(&g, &m).unwrap_err();
        assert!(err.contains("resource"), "{err}");
    }

    #[test]
    fn carried_edge_relaxed_by_ii() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let res = m.reservation(OpClass::FloatAdd).clone();
        let a = g.add_node(Node::op(
            Op::new(
                Opcode::FAdd,
                Some(VReg(0)),
                vec![Imm::F(0.0).into(), Imm::F(0.0).into()],
            ),
            res,
        ));
        g.add_edge(DepEdge::new(a, a, 1, 2, DepKind::True));
        // Self edge d=2 omega=1: needs ii >= 2.
        assert!(Schedule::new(vec![0], 2).validate(&g, &m).is_ok());
        assert!(Schedule::new(vec![0], 1).validate(&g, &m).is_err());
    }

    #[test]
    fn normalization_preserves_modulo_rows() {
        // Shift is a whole number of intervals: the earliest time lands
        // in [0, ii) on its original row (5 mod 3 = 2), and relative
        // spacing is untouched.
        let s = Schedule::new(vec![5, 7], 3);
        assert_eq!(s.time(NodeId(0)), 2);
        assert_eq!(s.time(NodeId(1)), 4);
        // Multiples of the interval normalize all the way to zero.
        let s = Schedule::new(vec![6, 7], 3);
        assert_eq!(s.time(NodeId(0)), 0);
        assert_eq!(s.time(NodeId(1)), 1);
        // Negative minima round toward -inf so times stay nonnegative.
        let s = Schedule::new(vec![-2, 0], 3);
        assert_eq!(s.time(NodeId(0)), 1);
        assert_eq!(s.time(NodeId(1)), 3);
    }

    #[test]
    fn stages_and_len() {
        let (g, _) = two_adds();
        let s = Schedule::new(vec![0, 2], 1);
        // Node at t=2, len 1 => len 3; 3 stages at ii=1.
        assert_eq!(s.len_with(&g), 3);
        assert_eq!(s.stages(&g), 3);
        let s = Schedule::new(vec![0, 2], 3);
        assert_eq!(s.stages(&g), 1);
    }
}
