//! Register-pressure analysis over emitted VLIW code.
//!
//! The paper's §2.3 position is to "use software pipelining aggressively,
//! by assuming that there are enough registers", with the empirical
//! observation that Warp's files (two 31-word float files, one 64-word
//! integer file) "are large enough for almost all the user programs".
//! This module supplies the evidence for our reproduction: a classic
//! backward liveness analysis over the emitted control-flow graph,
//! reporting the maximum number of simultaneously live virtual registers
//! per register class — the lower bound on any register allocation.

use std::collections::{BTreeMap, BTreeSet};

use ir::VReg;
use machine::{MachineDescription, RegClass};

use crate::code::{Terminator, VliwProgram};

/// The result of a pressure analysis.
#[derive(Debug, Clone)]
pub struct PressureReport {
    /// Maximum simultaneously live registers, per class.
    pub max_live: BTreeMap<RegClass, u32>,
    /// Classes whose pressure exceeds the machine's file size, as
    /// `(class, required, available)`.
    pub violations: Vec<(RegClass, u32, u32)>,
}

impl PressureReport {
    /// True if every class fits its register file.
    pub fn fits(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Computes per-class MAXLIVE for a compiled program on a machine.
pub fn register_pressure(p: &VliwProgram, mach: &MachineDescription) -> PressureReport {
    let nblocks = p.blocks.len();
    // Successor lists from terminators.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (i, b) in p.blocks.iter().enumerate() {
        match &b.term {
            Terminator::Fall(t) | Terminator::Jump(t) => succs[i].push(t.index()),
            Terminator::CondJump { nonzero, zero, .. } => {
                succs[i].push(nonzero.index());
                succs[i].push(zero.index());
            }
            Terminator::CountedLoop { back, exit, .. } => {
                succs[i].push(back.index());
                succs[i].push(exit.index());
            }
            Terminator::Halt => {}
        }
    }

    // Per-block gen/kill summary plus terminator uses, then iterate to a
    // fixpoint on live-in/live-out.
    let mut live_in: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); nblocks];
    let mut live_out: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..nblocks).rev() {
            let mut out = BTreeSet::new();
            for &s in &succs[i] {
                out.extend(live_in[s].iter().copied());
            }
            let mut live = out.clone();
            // Terminator reads (and the counted loop's write).
            match &p.blocks[i].term {
                Terminator::CondJump { cond, .. } => {
                    live.insert(*cond);
                }
                Terminator::CountedLoop { counter, .. } => {
                    // Decrement: read-modify-write.
                    live.insert(*counter);
                }
                _ => {}
            }
            for w in p.blocks[i].words.iter().rev() {
                // Within a word, all reads happen before any write retires.
                for op in &w.ops {
                    if let Some(d) = op.def() {
                        live.remove(&d);
                    }
                }
                for op in &w.ops {
                    live.extend(op.uses());
                }
            }
            if live_out[i] != out {
                live_out[i] = out;
                changed = true;
            }
            if live_in[i] != live {
                live_in[i] = live;
                changed = true;
            }
        }
    }

    // Second pass: per-word pressure using the converged live-outs.
    let mut max_live: BTreeMap<RegClass, u32> = BTreeMap::new();
    let mut bump = |live: &BTreeSet<VReg>, p: &VliwProgram| {
        let mut counts: BTreeMap<RegClass, u32> = BTreeMap::new();
        for &r in live {
            *counts.entry(p.regs.class(r)).or_insert(0) += 1;
        }
        for (c, n) in counts {
            let e = max_live.entry(c).or_insert(0);
            *e = (*e).max(n);
        }
    };
    for (i, b) in p.blocks.iter().enumerate() {
        let mut live = live_out[i].clone();
        match &b.term {
            Terminator::CondJump { cond, .. } => {
                live.insert(*cond);
            }
            Terminator::CountedLoop { counter, .. } => {
                live.insert(*counter);
            }
            _ => {}
        }
        bump(&live, p);
        for w in b.words.iter().rev() {
            for op in &w.ops {
                if let Some(d) = op.def() {
                    live.remove(&d);
                }
            }
            for op in &w.ops {
                live.extend(op.uses());
            }
            bump(&live, p);
        }
    }

    let mut violations = Vec::new();
    for (&class, &required) in &max_live {
        if let Some(available) = mach.reg_file_size(class) {
            if required > available {
                violations.push((class, required, available));
            }
        }
    }
    PressureReport {
        max_live,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use ir::{ProgramBuilder, TripCount};
    use machine::presets::warp_cell;

    fn vinc(n: u32) -> ir::Program {
        let mut b = ProgramBuilder::new("vinc");
        let a = b.array("a", n);
        b.for_counted(TripCount::Const(n), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
        });
        b.finish()
    }

    #[test]
    fn simple_loop_fits_easily() {
        let m = warp_cell();
        let c = compile(&vinc(64), &m, &CompileOptions::default()).unwrap();
        let r = register_pressure(&c.vliw, &m);
        assert!(r.fits(), "{:?}", r.violations);
        let float = r.max_live.get(&RegClass::Float).copied().unwrap_or(0);
        assert!((1..=20).contains(&float), "float pressure {float}");
    }

    #[test]
    fn pipelining_raises_pressure_over_baseline() {
        let m = warp_cell();
        let pipe = compile(&vinc(64), &m, &CompileOptions::default()).unwrap();
        let flat = compile(
            &vinc(64),
            &m,
            &CompileOptions {
                pipeline: false,
                ..Default::default()
            },
        )
        .unwrap();
        let pp = register_pressure(&pipe.vliw, &m);
        let pf = register_pressure(&flat.vliw, &m);
        let get = |r: &PressureReport| r.max_live.get(&RegClass::Float).copied().unwrap_or(0);
        assert!(
            get(&pp) >= get(&pf),
            "overlapped iterations keep more values alive: {} vs {}",
            get(&pp),
            get(&pf)
        );
    }

    #[test]
    fn dead_code_has_minimal_pressure() {
        let m = warp_cell();
        let mut b = ProgramBuilder::new("t");
        let out = b.array("o", 1);
        let x = b.fconst(1.0);
        b.store_fixed(out, 0, x.into());
        let c = compile(&b.finish(), &m, &CompileOptions::default()).unwrap();
        let r = register_pressure(&c.vliw, &m);
        assert!(r.max_live.get(&RegClass::Float).copied().unwrap_or(0) <= 2);
    }
}
