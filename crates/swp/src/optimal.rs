//! The exact-II oracle: a branch-and-bound modulo scheduler.
//!
//! Lam's heuristic (§2.2, [`crate::modsched`]) is fast but offers no
//! bound on how far its achieved initiation interval sits above the true
//! optimum — the paper argues near-optimality anecdotally. This module
//! turns that claim into a *certificate*: an exhaustive search that, for
//! each candidate interval `s`, either produces a schedule (feasibility
//! witness, re-validated independently) or proves that none exists
//! (optimality proof for every larger interval already witnessed).
//! Exact modulo scheduling by complete search is tractable at these loop
//! sizes — Roorda's SMT formulation and Tirelli & Pozzi's SAT-based CGRA
//! mapper (see `PAPERS.md`) both demonstrate it — but the workspace is
//! hermetic, so the search is built in-tree rather than on a solver.
//!
//! # Formulation
//!
//! At a fixed candidate interval `s`, split every issue time as
//! `σ(v) = row(v) + s·stage(v)` with `row(v) ∈ [0, s)`. Two observations
//! make `row` the complete branching space:
//!
//! * the modulo reservation table depends **only** on `row(v)` — stages
//!   are invisible to resources;
//! * once rows are fixed, a dependence edge `u → v` with weight
//!   `w = d − s·ω` becomes the *integer* difference constraint
//!   `stage(v) − stage(u) ≥ ⌈(w + row(u) − row(v)) / s⌉`, and such a
//!   system is satisfiable iff its constraint graph has no positive
//!   cycle (Bellman–Ford longest paths both decide it and produce the
//!   least stage assignment).
//!
//! So the oracle branches on row assignments with three propagators:
//!
//! 1. **MRT pruning** — a candidate row must fit the node's reservation
//!    in the [`ModuloTable`] ([`ModuloTable::fits_aggregate`], which also
//!    catches a reservation wrapping onto itself), and reduced constructs
//!    honor the no-wrap rule `row + len ≤ s`;
//! 2. **closure windows** — the concrete all-pairs longest-path matrix
//!    `lp` at `s`, seeded from the direct edges *and* from every
//!    [`SccClosure`] distance set evaluated at `s`
//!    ([`SccClosure::pairs`]), then closed with Floyd–Warshall. A
//!    positive diagonal proves the interval recurrence-infeasible with
//!    zero search; for a partially assigned pair `u, v` the derived
//!    two-cycle test `⌈(lp[u][v]+Δr)/s⌉ + ⌈(lp[v][u]−Δr)/s⌉ > 0` prunes
//!    rows whose stage constraints can never be met — `lp` paths run
//!    through *unassigned* intermediates, which is what gives the
//!    propagator its reach;
//! 3. **dominance pruning on symmetric placements** — shifting a whole
//!    schedule by one cycle rotates every row uniformly, so row
//!    assignments form rotation classes. The first node branched is
//!    pinned to row 0, cutting the factor-of-`s` symmetry. (With two or
//!    more no-wrap nodes rotation is not a symmetry — their window
//!    constraints are not shift-invariant — and the anchor is disabled;
//!    with exactly one, anchoring *that* node is still sound because
//!    `row = 0` is the least constrained point of its own window.)
//!
//! A full assignment is checked exactly (Bellman–Ford over the derived
//! stage constraints), reconstructed into a [`Schedule`], and
//! re-validated against the graph and machine from first principles —
//! the oracle's schedules pass [`crate::verify`] like any other.
//!
//! # Budget semantics
//!
//! The search carries a per-interval **node budget**: every attempted
//! `(node, row)` placement costs one unit, and an interval whose tree is
//! not exhausted in budget reports [`IiVerdict::Budget`] ("unknown")
//! rather than a verdict. Budgets are deterministic — the same graph,
//! machine, and options always explore the same tree in the same order —
//! which is why the budget counts nodes, not wall-clock time. A budget
//! of zero therefore answers without exploring at all.

use machine::MachineDescription;

use crate::graph::{DepGraph, NodeId};
use crate::mii::{rec_mii, res_mii, MiiReport};
use crate::modsched::{default_max_ii, SchedAnalysis, SchedError};
use crate::mrt::ModuloTable;
use crate::schedule::Schedule;

/// Sentinel threshold for "no path" entries of the longest-path matrix
/// (quarter-range so additions cannot overflow before the guard).
const NEG: i64 = i64::MIN / 4;

/// Default per-interval node budget: enough to close every corpus loop
/// (see `results/optimal_report.txt`) while bounding the worst case.
pub const DEFAULT_NODE_BUDGET: u64 = 200_000;

/// Options for [`certify`].
#[derive(Debug, Clone, Copy)]
pub struct OracleOptions {
    /// Hard cap on the interval search; `None` derives the same
    /// serialized-iteration bound the heuristic uses. Callers certifying
    /// a known-feasible interval `h` (the heuristic's) should pass
    /// `Some(h - 1)`: proving `[MII, h-1]` infeasible proves `h` optimal.
    pub max_ii: Option<u32>,
    /// Branch-and-bound node budget **per candidate interval**: the
    /// number of `(node, row)` placements the search may attempt before
    /// declaring the interval unresolved. Zero answers without exploring.
    pub node_budget: u64,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            max_ii: None,
            node_budget: DEFAULT_NODE_BUDGET,
        }
    }
}

/// What the search established for one candidate interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IiVerdict {
    /// A schedule exists (witness produced and validated).
    Feasible,
    /// The complete tree was exhausted: no schedule exists.
    Infeasible,
    /// The node budget expired before the tree was exhausted.
    Budget,
}

/// The oracle's overall answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleOutcome {
    /// A schedule was found at `ii` and every smaller candidate (down to
    /// the MII, below which no schedule can exist) was *proved*
    /// infeasible: `ii` is the exact optimum.
    Proved {
        /// The certified optimal initiation interval.
        ii: u32,
    },
    /// A schedule was found at `ii` but at least one smaller candidate
    /// ran out of budget, so optimality is not certified — the true
    /// optimum lies in `[MII, ii]`.
    Feasible {
        /// The smallest initiation interval witnessed so far.
        ii: u32,
    },
    /// Every candidate interval in `[MII, max_ii]` was proved
    /// infeasible. When the caller capped the search at a known-feasible
    /// `h` with `max_ii = h - 1`, this outcome proves `h` optimal.
    InfeasibleUpTo {
        /// The largest interval proved infeasible.
        max_ii: u32,
    },
    /// The budget expired with no schedule found and no complete
    /// infeasibility sweep: the oracle learned nothing definitive.
    Exhausted,
}

/// Result of a [`certify`] run.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// The structured answer.
    pub outcome: OracleOutcome,
    /// The witness schedule for `Proved`/`Feasible` outcomes. Always
    /// re-validated against the graph and machine before being returned.
    pub schedule: Option<Schedule>,
    /// The lower bounds that anchored the sweep.
    pub mii: MiiReport,
    /// Total `(node, row)` placements attempted across all intervals.
    pub explored: u64,
    /// Per-interval verdicts in sweep order.
    pub attempts: Vec<(u32, IiVerdict)>,
}

impl OracleResult {
    /// The certified optimal interval, if the outcome proves one.
    pub fn exact_ii(&self) -> Option<u32> {
        match self.outcome {
            OracleOutcome::Proved { ii } => Some(ii),
            _ => None,
        }
    }
}

/// Runs the exact search: sweeps candidate intervals from the MII upward
/// and branch-and-bounds each one under the per-interval budget.
///
/// # Errors
///
/// [`SchedError::IllegalCycle`] for zero-omega positive-delay cycles and
/// [`SchedError::ImpossibleResource`] when the body demands a resource
/// the machine has zero units of — the same structured failures the
/// heuristic reports, so differential harnesses can compare directly.
pub fn certify(
    g: &DepGraph,
    mach: &MachineDescription,
    opts: &OracleOptions,
) -> Result<OracleResult, SchedError> {
    if g.num_nodes() == 0 {
        return Ok(OracleResult {
            outcome: OracleOutcome::Proved { ii: 1 },
            schedule: Some(Schedule::new(Vec::new(), 1)),
            mii: MiiReport {
                res_mii: 1,
                rec_mii: 0,
            },
            explored: 0,
            attempts: Vec::new(),
        });
    }
    let analysis = SchedAnalysis::analyze(g);
    let res = res_mii(g, mach).map_err(|z| SchedError::ImpossibleResource {
        resource: z.resource,
    })?;
    let rec = rec_mii(&analysis.closures).map_err(|_| SchedError::IllegalCycle)?;
    let mii = MiiReport {
        res_mii: res,
        rec_mii: rec,
    };
    let lo = mii.mii();
    let hi = opts.max_ii.unwrap_or_else(|| default_max_ii(g, lo));

    let mut search = Search::new(g, mach, &analysis);
    let mut attempts = Vec::new();
    let mut explored = 0u64;
    let mut all_proved = true;
    for s in lo..=hi {
        match search.run(s, opts.node_budget) {
            SearchOutcome::Infeasible => attempts.push((s, IiVerdict::Infeasible)),
            SearchOutcome::Budget => {
                attempts.push((s, IiVerdict::Budget));
                all_proved = false;
            }
            SearchOutcome::Found(schedule) => {
                attempts.push((s, IiVerdict::Feasible));
                explored += search.explored;
                let outcome = if all_proved {
                    OracleOutcome::Proved { ii: s }
                } else {
                    OracleOutcome::Feasible { ii: s }
                };
                return Ok(OracleResult {
                    outcome,
                    schedule: Some(schedule),
                    mii,
                    explored,
                    attempts,
                });
            }
        }
        explored += search.explored;
    }
    let outcome = if all_proved {
        OracleOutcome::InfeasibleUpTo { max_ii: hi }
    } else {
        OracleOutcome::Exhausted
    };
    Ok(OracleResult {
        outcome,
        schedule: None,
        mii,
        explored,
        attempts,
    })
}

/// Outcome of one fixed-interval search.
enum SearchOutcome {
    Found(Schedule),
    Infeasible,
    Budget,
}

/// Per-`certify` search state, reused across candidate intervals so the
/// matrix and table buffers are allocated once.
struct Search<'a> {
    g: &'a DepGraph,
    mach: &'a MachineDescription,
    analysis: &'a SchedAnalysis,
    n: usize,
    /// Concrete longest-path matrix at the current interval, row-major.
    lp: Vec<i64>,
    /// Branching order (a connectivity-greedy permutation of the nodes).
    order: Vec<NodeId>,
    /// Whether the first node of `order` may be pinned to row 0.
    anchor: bool,
    /// Rows assigned so far, by node index (`-1` = unassigned).
    rows: Vec<i64>,
    /// Assigned prefix of `order`, as node indices.
    assigned: Vec<usize>,
    /// Stage potentials scratch for the leaf consistency check.
    stage: Vec<i64>,
    /// `(node, row)` placements attempted at the current interval.
    explored: u64,
}

/// `⌈a / b⌉` for positive `b` and any `a`.
fn ceil_div(a: i64, b: i64) -> i64 {
    (a + b - 1).div_euclid(b)
}

impl<'a> Search<'a> {
    fn new(g: &'a DepGraph, mach: &'a MachineDescription, analysis: &'a SchedAnalysis) -> Self {
        let n = g.num_nodes();
        Search {
            g,
            mach,
            analysis,
            n,
            lp: vec![NEG; n * n],
            order: Vec::with_capacity(n),
            anchor: false,
            rows: vec![-1; n],
            assigned: Vec::with_capacity(n),
            stage: vec![0; n],
            explored: 0,
        }
    }

    /// Builds the concrete longest-path matrix for interval `s`. Returns
    /// `false` if some diagonal entry is positive — a cycle whose delay
    /// exceeds `s·ω`, proving the interval infeasible outright.
    fn build_lp(&mut self, s: u32) -> bool {
        let n = self.n;
        self.lp.iter_mut().for_each(|d| *d = NEG);
        for v in 0..n {
            self.lp[v * n + v] = 0;
        }
        for e in self.g.edges() {
            let w = e.delay - (s as i64) * (e.omega as i64);
            let cell = &mut self.lp[e.from.index() * n + e.to.index()];
            *cell = (*cell).max(w);
        }
        // Seed with the symbolic closure instantiated at s: inside a
        // strongly connected component these bounds are already the full
        // all-pairs answer, so Floyd–Warshall only has to stitch
        // components together along the condensation.
        for cl in &self.analysis.closures {
            for (a, b, ds) in cl.pairs() {
                if let Some(d) = ds.eval(s) {
                    let cell = &mut self.lp[a.index() * n + b.index()];
                    *cell = (*cell).max(d);
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                let ik = self.lp[i * n + k];
                if ik <= NEG {
                    continue;
                }
                for j in 0..n {
                    let kj = self.lp[k * n + j];
                    if kj <= NEG {
                        continue;
                    }
                    let cell = &mut self.lp[i * n + j];
                    *cell = (*cell).max(ik + kj);
                }
            }
        }
        (0..n).all(|v| self.lp[v * n + v] <= 0)
    }

    /// Chooses the branching order: start from the anchor (the unique
    /// no-wrap node if there is exactly one, else the node with the
    /// heaviest resource footprint) and greedily append the node most
    /// constrained against the ordered prefix — most finite `lp`
    /// relations first, heaviest footprint as the tie-break — so the
    /// pairwise propagator bites as early as possible.
    fn build_order(&mut self) {
        let n = self.n;
        let weight: Vec<u64> = (0..n)
            .map(|v| {
                let node = self.g.node(NodeId(v as u32));
                let units: u64 = node
                    .reservation
                    .rows()
                    .flat_map(|r| r.iter())
                    .map(|(_, u)| u as u64)
                    .sum();
                units * 256 + node.len as u64
            })
            .collect();
        let no_wrap: Vec<usize> = (0..n)
            .filter(|&v| self.g.node(NodeId(v as u32)).needs_no_wrap())
            .collect();
        self.anchor = no_wrap.len() <= 1;
        let first = match no_wrap.as_slice() {
            [only] => *only,
            _ => (0..n)
                .max_by_key(|&v| (weight[v], std::cmp::Reverse(v)))
                .unwrap_or(0),
        };
        self.order.clear();
        self.order.push(NodeId(first as u32));
        let mut in_order = vec![false; n];
        in_order[first] = true;
        while self.order.len() < n {
            let next = (0..n)
                .filter(|&v| !in_order[v])
                .max_by_key(|&v| {
                    let relations = self
                        .order
                        .iter()
                        .filter(|&&u| {
                            self.lp[u.index() * n + v] > NEG || self.lp[v * n + u.index()] > NEG
                        })
                        .count();
                    (relations, weight[v], std::cmp::Reverse(v))
                })
                .expect("unordered node exists");
            in_order[next] = true;
            self.order.push(NodeId(next as u32));
        }
    }

    /// True if assigning `row` to node `x` is compatible with every
    /// already-assigned node under the derived stage constraints (the
    /// two-cycle test through the longest-path matrix).
    fn pairwise_ok(&self, x: usize, row: i64, s: i64) -> bool {
        let n = self.n;
        for &u in &self.assigned {
            let fwd = self.lp[x * n + u];
            let bwd = self.lp[u * n + x];
            if fwd > NEG && bwd > NEG {
                let ru = self.rows[u];
                if ceil_div(fwd + row - ru, s) + ceil_div(bwd + ru - row, s) > 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Exact consistency check of a full row assignment: Bellman–Ford
    /// longest paths over the derived stage constraints. On success
    /// (`true`) `self.stage` holds the least stage assignment; `false`
    /// means a positive cycle (no stages exist for these rows).
    fn relax_stages(&mut self, s: i64) -> bool {
        let n = self.n;
        self.stage.iter_mut().for_each(|k| *k = 0);
        for _round in 0..=n {
            let mut changed = false;
            for u in 0..n {
                for v in 0..n {
                    let w = self.lp[u * n + v];
                    if w <= NEG || u == v {
                        continue;
                    }
                    let c = ceil_div(w + self.rows[u] - self.rows[v], s);
                    if self.stage[u] + c > self.stage[v] {
                        self.stage[v] = self.stage[u] + c;
                        changed = true;
                    }
                }
            }
            if !changed {
                return true;
            }
        }
        false
    }

    /// Branch-and-bound at interval `s` under `budget`.
    fn run(&mut self, s: u32, budget: u64) -> SearchOutcome {
        self.explored = 0;
        // Reduced constructs must fit inside one interval at all.
        if self
            .g
            .nodes()
            .iter()
            .any(|nd| nd.needs_no_wrap() && nd.len as i64 > s as i64)
        {
            return SearchOutcome::Infeasible;
        }
        if !self.build_lp(s) {
            return SearchOutcome::Infeasible;
        }
        self.build_order();
        self.rows.iter_mut().for_each(|r| *r = -1);
        self.assigned.clear();
        let mut mrt = ModuloTable::new(self.mach, s);
        self.descend(0, s, budget, &mut mrt)
    }

    fn descend(&mut self, depth: usize, s: u32, budget: u64, mrt: &mut ModuloTable) -> SearchOutcome {
        if depth == self.n {
            return match self.leaf_schedule(s) {
                Some(sched) => SearchOutcome::Found(sched),
                None => SearchOutcome::Infeasible,
            };
        }
        let x = self.order[depth].index();
        let node = self.g.node(NodeId(x as u32));
        let hi = if node.needs_no_wrap() {
            s as i64 - node.len as i64
        } else {
            s as i64 - 1
        };
        let hi = if depth == 0 && self.anchor { 0 } else { hi };
        for row in 0..=hi {
            if self.explored >= budget {
                return SearchOutcome::Budget;
            }
            self.explored += 1;
            if !mrt.fits_aggregate(&node.reservation, row) {
                continue;
            }
            if !self.pairwise_ok(x, row, s as i64) {
                continue;
            }
            mrt.place(&node.reservation, row);
            self.rows[x] = row;
            self.assigned.push(x);
            match self.descend(depth + 1, s, budget, mrt) {
                SearchOutcome::Infeasible => {
                    self.assigned.pop();
                    self.rows[x] = -1;
                    mrt.remove(&node.reservation, row);
                }
                found_or_budget => return found_or_budget,
            }
        }
        SearchOutcome::Infeasible
    }

    /// Reconstructs and re-validates the schedule for a complete row
    /// assignment; `None` if the derived stage system has a positive
    /// cycle (the assignment admits no stages after all).
    fn leaf_schedule(&mut self, s: u32) -> Option<Schedule> {
        if !self.relax_stages(s as i64) {
            return None;
        }
        let times: Vec<i64> = (0..self.n)
            .map(|v| self.rows[v] + (s as i64) * self.stage[v])
            .collect();
        let sched = Schedule::new(times, s);
        match sched.validate(self.g, self.mach) {
            Ok(()) => Some(sched),
            Err(reason) => {
                // The construction above is supposed to make this
                // unreachable; treating it as a dead end keeps the oracle
                // sound (never emits an invalid witness) at the price of
                // completeness, and the debug build fails loudly.
                debug_assert!(false, "oracle built an invalid schedule: {reason}");
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::graph::{DepEdge, DepKind, Node};
    use crate::modsched::{modulo_schedule, SchedOptions};
    use crate::verify::verify_schedule;
    use ir::{Imm, Op, Opcode, RegTable, Type, VReg};
    use machine::presets::{test_machine, toy_vector};
    use machine::{MachineDescription, OpClass};

    fn leaf(m: &MachineDescription, class: OpClass, dst: u32) -> Node {
        let opcode = match class {
            OpClass::FloatDiv => Opcode::FDiv,
            OpClass::FloatMul => Opcode::FMul,
            _ => Opcode::FAdd,
        };
        Node::op(
            Op::new(
                opcode,
                Some(VReg(dst)),
                vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
            ),
            m.reservation(class).clone(),
        )
    }

    fn edge(from: crate::graph::NodeId, to: crate::graph::NodeId, delay: i64, omega: u32) -> DepEdge {
        DepEdge::new(from, to, omega, delay, DepKind::True)
    }

    /// The §2 vector-add body: the oracle must agree with the heuristic
    /// that ii = 1 and prove it (there is nothing below the MII to test).
    #[test]
    fn vector_add_proved_at_one() {
        let m = toy_vector();
        let mut regs = RegTable::new();
        let i = regs.alloc(Type::I32);
        let addr = regs.alloc(Type::I32);
        let x = regs.alloc(Type::F32);
        let y = regs.alloc(Type::F32);
        let ops = vec![
            Op::new(Opcode::Add, Some(addr), vec![i.into(), Imm::I(0).into()]),
            Op::new(Opcode::Load, Some(x), vec![addr.into()])
                .with_mem(ir::MemRef::affine(ir::ArrayId(0), 1, 0)),
            Op::new(Opcode::FAdd, Some(y), vec![x.into(), Imm::F(1.0).into()]),
            Op::new(Opcode::Store, None, vec![addr.into(), y.into()])
                .with_mem(ir::MemRef::affine(ir::ArrayId(0), 1, 0)),
            Op::new(Opcode::Add, Some(i), vec![i.into(), Imm::I(1).into()]),
        ];
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = certify(&g, &m, &OracleOptions::default()).unwrap();
        assert_eq!(r.outcome, OracleOutcome::Proved { ii: 1 });
        assert_eq!(r.exact_ii(), Some(1));
        let sched = r.schedule.expect("witness");
        assert!(verify_schedule(&g, &sched, &m, "vadd").is_empty());
    }

    /// Recurrence-bound accumulator: proved at the recurrence MII, and
    /// the witness re-verifies.
    #[test]
    fn accumulator_proved_at_rec_mii() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        g.add_edge(edge(a, a, 2, 1)); // acc -> acc, latency 2
        let r = certify(&g, &m, &OracleOptions::default()).unwrap();
        assert_eq!(r.mii.rec_mii, 2);
        assert_eq!(r.outcome, OracleOutcome::Proved { ii: 2 });
        let sched = r.schedule.expect("witness");
        assert!(verify_schedule(&g, &sched, &m, "acc").is_empty());
    }

    /// A demanded zero-capacity resource is the structured error, not a
    /// hang or a panic.
    #[test]
    fn zero_capacity_is_structured_error() {
        let mut b = machine::MachineBuilder::new("phantom-test");
        let fadd = b.resource("fadd", 1);
        let phantom = b.resource("phantom", 0);
        b.uniform_default_timing(1);
        b.timing(
            OpClass::FloatAdd,
            2,
            machine::ReservationTable::single_cycle(fadd, 1),
        );
        let m = b.build().unwrap();
        let mut g = DepGraph::new();
        g.add_node(Node {
            kind: crate::graph::NodeKind::Op(Op::new(
                Opcode::FAdd,
                Some(VReg(0)),
                vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
            )),
            reservation: machine::ReservationTable::single_cycle(phantom, 1),
            len: 1,
        });
        let err = certify(&g, &m, &OracleOptions::default()).unwrap_err();
        assert_eq!(
            err,
            SchedError::ImpossibleResource {
                resource: "phantom".to_string()
            }
        );
    }

    /// A zero-omega positive-delay cycle is rejected like the heuristic
    /// rejects it.
    #[test]
    fn illegal_cycle_is_structured_error() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        let b = g.add_node(leaf(&m, OpClass::FloatAdd, 1));
        g.add_edge(edge(a, b, 1, 0));
        g.add_edge(edge(b, a, 1, 0));
        assert_eq!(
            certify(&g, &m, &OracleOptions::default()).unwrap_err(),
            SchedError::IllegalCycle
        );
    }

    /// A budget of zero explores nothing and reports `Exhausted`: every
    /// interval's verdict is `Budget`, no placement is ever attempted.
    #[test]
    fn zero_budget_is_exhausted_without_exploring() {
        let m = test_machine();
        let mut g = DepGraph::new();
        g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        g.add_node(leaf(&m, OpClass::FloatAdd, 1));
        let opts = OracleOptions {
            max_ii: Some(4),
            node_budget: 0,
        };
        let r = certify(&g, &m, &opts).unwrap();
        assert_eq!(r.outcome, OracleOutcome::Exhausted);
        assert_eq!(r.explored, 0);
        assert!(r.schedule.is_none());
        assert!(r.attempts.iter().all(|&(_, v)| v == IiVerdict::Budget));
    }

    /// An over-constrained loop: an op whose reservation occupies the
    /// single fmul unit at relative rows 0 and 2 wraps onto itself at
    /// s = 2, so the resource MII of 2 is unachievable. The oracle must
    /// *prove* s = 2 infeasible (no budget excuse) and certify s = 3.
    #[test]
    fn over_constrained_proves_mii_infeasible_and_certifies_above() {
        let mut b = machine::MachineBuilder::new("wrap-test");
        let unit = b.resource("unit", 1);
        b.uniform_default_timing(1);
        let mut res = machine::ReservationTable::block(unit, 1, 3);
        *res.row_mut(1) = machine::ResourceUse::none();
        b.timing(OpClass::FloatMul, 3, res);
        let m = b.build().unwrap();
        let mut g = DepGraph::new();
        g.add_node(leaf(&m, OpClass::FloatMul, 0));
        let r = certify(&g, &m, &OracleOptions::default()).unwrap();
        assert_eq!(r.mii.mii(), 2, "two busy rows on one unit");
        assert_eq!(
            r.attempts.first(),
            Some(&(2, IiVerdict::Infeasible)),
            "s = 2 must be proved infeasible, not merely unresolved"
        );
        assert_eq!(r.outcome, OracleOutcome::Proved { ii: 3 });
        let sched = r.schedule.expect("witness");
        assert!(verify_schedule(&g, &sched, &m, "wrap").is_empty());
    }

    /// Differential spot check: on a body with a nontrivial recurrence
    /// *and* resource contention, the oracle never reports a worse
    /// interval than the heuristic, and a `Proved` interval is never
    /// below the MII.
    #[test]
    fn oracle_never_worse_than_heuristic() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let i = regs.alloc(Type::I32);
        let acc = regs.alloc(Type::F32);
        let addr = regs.alloc(Type::I32);
        let x = regs.alloc(Type::F32);
        let y = regs.alloc(Type::F32);
        let ops = vec![
            Op::new(Opcode::Add, Some(addr), vec![i.into(), Imm::I(0).into()]),
            Op::new(Opcode::Load, Some(x), vec![addr.into()])
                .with_mem(ir::MemRef::affine(ir::ArrayId(0), 1, 0)),
            Op::new(Opcode::FMul, Some(y), vec![x.into(), x.into()]),
            Op::new(Opcode::FAdd, Some(acc), vec![acc.into(), y.into()]),
            Op::new(Opcode::Add, Some(i), vec![i.into(), Imm::I(1).into()]),
        ];
        let g = build_graph(&ops, &m, BuildOptions::default());
        let h = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        let r = certify(&g, &m, &OracleOptions::default()).unwrap();
        match r.outcome {
            OracleOutcome::Proved { ii } | OracleOutcome::Feasible { ii } => {
                assert!(ii <= h.schedule.ii(), "oracle {ii} vs heuristic {}", h.schedule.ii());
                assert!(ii >= r.mii.mii());
            }
            other => panic!("oracle failed to find any schedule: {other:?}"),
        }
    }

    /// Capping the sweep below the MII proves nothing was skipped: the
    /// empty range `[MII, max_ii]` is (vacuously) all-infeasible, the
    /// convention the gap certifier relies on when the heuristic already
    /// achieved the lower bound.
    #[test]
    fn cap_below_mii_is_vacuous_infeasibility() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        g.add_edge(edge(a, a, 4, 1));
        let opts = OracleOptions {
            max_ii: Some(3), // below rec_mii = 4
            node_budget: DEFAULT_NODE_BUDGET,
        };
        let r = certify(&g, &m, &opts).unwrap();
        assert_eq!(r.outcome, OracleOutcome::InfeasibleUpTo { max_ii: 3 });
        assert!(r.attempts.is_empty());
        assert_eq!(r.explored, 0);
    }
}
