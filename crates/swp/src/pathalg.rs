//! All-points longest paths with a *symbolic* initiation interval.
//!
//! The paper's preprocessing step (§2.2.2): "compute the closure of the
//! precedence constraints in each connected component by solving the
//! all-points longest path problem for each component … using a symbolic
//! value to stand for the initiation interval."
//!
//! A path's weight is `d(P) - s * omega(P)` — a *linear function* of the
//! initiation interval `s`, determined by the pair `(d, omega)` of summed
//! delays and iteration differences. We therefore represent distances as
//! Pareto sets of such pairs: one pair dominates another if its weight is
//! at least as large **for every** `s >= 1`, i.e. if it has no larger
//! `omega` and no smaller `d`.
//!
//! The closure is computed by Bellman–Ford-style relaxation, bounded at
//! `|V|` rounds: that covers every elementary path and cycle, which is
//! sufficient because for any feasible `s` (at least the recurrence-based
//! MII) traversing an extra cycle contributes `d(c) - s*omega(c) <= 0` and
//! can never tighten a constraint. (The final schedule is independently
//! validated against every edge, so this bound affects search guidance
//! only, never soundness.)

use std::fmt;

use crate::graph::{DepGraph, NodeId};
use crate::scc::SccDecomposition;

/// A Pareto set of `(delay, omega)` path weights from one node to another.
///
/// Invariant: entries are sorted by increasing `omega` and strictly
/// increasing `delay` (otherwise a smaller-omega entry would dominate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistSet {
    entries: Vec<(i64, u32)>, // (delay, omega)
}

impl DistSet {
    /// The empty set: no path.
    pub fn empty() -> Self {
        DistSet::default()
    }

    /// A set with a single path weight.
    pub fn single(delay: i64, omega: u32) -> Self {
        DistSet {
            entries: vec![(delay, omega)],
        }
    }

    /// True if there is no path.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(delay, omega)` pairs, sorted by `omega`.
    pub fn entries(&self) -> &[(i64, u32)] {
        &self.entries
    }

    /// Inserts a path weight, keeping only Pareto-optimal entries.
    /// Returns true if the set changed.
    pub fn insert(&mut self, delay: i64, omega: u32) -> bool {
        // Dominated by an existing entry with omega' <= omega, d' >= d?
        if self
            .entries
            .iter()
            .any(|&(d, o)| o <= omega && d >= delay)
        {
            return false;
        }
        // Remove entries dominated by the new one.
        self.entries.retain(|&(d, o)| !(o >= omega && d <= delay));
        let pos = self
            .entries
            .binary_search_by_key(&(omega, delay), |&(d, o)| (o, d))
            .unwrap_or_else(|p| p);
        self.entries.insert(pos, (delay, omega));
        true
    }

    /// Merges another set into this one; returns true if anything changed.
    pub fn merge(&mut self, other: &DistSet) -> bool {
        let mut changed = false;
        for &(d, o) in &other.entries {
            changed |= self.insert(d, o);
        }
        changed
    }

    /// The set of weights of concatenated paths `self ++ other`.
    pub fn combine(&self, other: &DistSet) -> DistSet {
        let mut out = DistSet::empty();
        for &(d1, o1) in &self.entries {
            for &(d2, o2) in &other.entries {
                out.insert(d1 + d2, o1 + o2);
            }
        }
        out
    }

    /// Evaluates the longest-path weight for a concrete initiation
    /// interval: `max over entries of (d - s * omega)`. `None` if empty.
    pub fn eval(&self, s: u32) -> Option<i64> {
        self.entries
            .iter()
            .map(|&(d, o)| d - (s as i64) * (o as i64))
            .max()
    }

    /// The tightest lower bound on the initiation interval implied by a
    /// *cycle* with these weights: the constraint `d - s*omega <= 0` for
    /// every entry with `omega > 0`, i.e. `s >= ceil(d / omega)`.
    ///
    /// Entries with `omega == 0` and `d > 0` mean an illegal program
    /// (a zero-distance positive-delay cycle) and yield `None`.
    pub fn cycle_bound(&self) -> Option<i64> {
        let mut bound = 0i64;
        for &(d, o) in &self.entries {
            if o == 0 {
                if d > 0 {
                    return None;
                }
            } else {
                bound = bound.max(div_ceil(d, o as i64));
            }
        }
        Some(bound)
    }
}

impl fmt::Display for DistSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (d, o)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}-{o}s")?;
        }
        write!(f, "}}")
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a > 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

/// The all-points longest-path closure of one strongly connected
/// component, with symbolic initiation interval.
#[derive(Debug, Clone)]
pub struct SccClosure {
    /// Members of the component, ascending.
    pub members: Vec<NodeId>,
    /// `dist[i][j]` is the Pareto set of path weights from `members[i]` to
    /// `members[j]` (paths of length >= 1 edge; `i == j` gives cycles).
    dist: Vec<Vec<DistSet>>,
    /// Maps a node id to its index in `members`.
    index_of: Vec<usize>,
    max_node: usize,
}

impl SccClosure {
    /// Computes the closure of component `comp` of `scc` within `g`,
    /// considering only edges internal to the component.
    ///
    /// Relaxation is edge-wise Bellman–Ford, run for `k` rounds (covering
    /// every path of at most `k + 1` edges, hence every elementary path
    /// and cycle), with total iteration difference capped at a small
    /// multiple of the largest single-edge omega. The cap keeps the
    /// Pareto sets tiny — without it, cycle extensions `(t*d, t*omega)`
    /// are pairwise incomparable and large components (e.g. unrolled
    /// bodies glued together by conservative anti edges) blow the closure
    /// up combinatorially. High-omega composite cycles can never raise
    /// the recurrence bound anyway (the mediant inequality bounds a
    /// composite cycle's `d/omega` by its worst sub-cycle), and any range
    /// constraint the cap hides merely costs the search a failed,
    /// *validated* attempt — never soundness.
    pub fn compute(g: &DepGraph, scc: &SccDecomposition, comp: usize) -> SccClosure {
        let members = scc.members[comp].clone();
        let k = members.len();
        let max_node = g.num_nodes();
        let mut index_of = vec![usize::MAX; max_node];
        for (i, m) in members.iter().enumerate() {
            index_of[m.index()] = i;
        }
        // Internal edges as (from, to, delay, omega).
        let mut edges: Vec<(usize, usize, i64, u32)> = Vec::new();
        let mut max_edge_omega = 0u32;
        for &m in &members {
            for e in g.succ_edges(m) {
                if scc.comp[e.to.index()] == comp {
                    edges.push((
                        index_of[m.index()],
                        index_of[e.to.index()],
                        e.delay,
                        e.omega,
                    ));
                    max_edge_omega = max_edge_omega.max(e.omega);
                }
            }
        }
        let omega_cap = max_edge_omega.saturating_mul(2).saturating_add(2);
        let mut dist = vec![vec![DistSet::empty(); k]; k];
        for &(u, v, d, o) in &edges {
            dist[u][v].insert(d, o);
        }
        for _ in 0..k {
            let mut changed = false;
            for &(u, v, d, o) in &edges {
                #[allow(clippy::needless_range_loop)] // dist[i][u] and dist[i][v] alias
                for i in 0..k {
                    if dist[i][u].is_empty() {
                        continue;
                    }
                    // Extend every known path i -> u by the edge u -> v.
                    let mut additions: Vec<(i64, u32)> = Vec::new();
                    for &(pd, po) in dist[i][u].entries() {
                        let no = po + o;
                        if no <= omega_cap {
                            additions.push((pd + d, no));
                        }
                    }
                    for (nd, no) in additions {
                        changed |= dist[i][v].insert(nd, no);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        SccClosure {
            members,
            dist,
            index_of,
            max_node,
        }
    }

    /// Path-weight set from `a` to `b` (both must be members).
    pub fn dist(&self, a: NodeId, b: NodeId) -> &DistSet {
        let i = self.index_of[a.index()];
        let j = self.index_of[b.index()];
        &self.dist[i][j]
    }

    /// True if `n` belongs to this component.
    pub fn contains(&self, n: NodeId) -> bool {
        n.index() < self.max_node && self.index_of[n.index()] != usize::MAX
    }

    /// The recurrence-constrained lower bound on the initiation interval
    /// contributed by this component: `max over cycles c of
    /// ceil(d(c) / omega(c))` (§2.2, precedence constraints).
    ///
    /// Returns `None` for an illegal zero-omega positive-delay cycle.
    pub fn recurrence_mii(&self) -> Option<i64> {
        let mut bound = 0i64;
        for i in 0..self.members.len() {
            bound = bound.max(self.dist[i][i].cycle_bound()?);
        }
        Some(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepEdge, DepKind, Node};
    use crate::scc::tarjan;
    use ir::{Imm, Op, Opcode, VReg};
    use machine::ReservationTable;

    #[test]
    fn distset_pareto_pruning() {
        let mut s = DistSet::empty();
        assert!(s.insert(5, 1));
        assert!(!s.insert(4, 1), "dominated: same omega, smaller d");
        assert!(!s.insert(5, 2), "dominated: larger omega, same d");
        assert!(s.insert(9, 2), "larger d at larger omega is incomparable");
        assert!(s.insert(2, 0));
        assert_eq!(s.entries(), &[(2, 0), (5, 1), (9, 2)]);
    }

    #[test]
    fn distset_insert_removes_dominated() {
        let mut s = DistSet::empty();
        s.insert(3, 2);
        s.insert(5, 1); // dominates (3, 2)
        assert_eq!(s.entries(), &[(5, 1)]);
    }

    #[test]
    fn distset_eval_maximizes() {
        let mut s = DistSet::empty();
        s.insert(2, 0);
        s.insert(9, 2);
        // s = 1: max(2, 9-2) = 7. s = 4: max(2, 1) = 2. s = 10: max(2, -11) = 2.
        assert_eq!(s.eval(1), Some(7));
        assert_eq!(s.eval(4), Some(2));
        assert_eq!(s.eval(10), Some(2));
        assert_eq!(DistSet::empty().eval(3), None);
    }

    #[test]
    fn distset_combine_sums() {
        let a = DistSet::single(3, 1);
        let b = DistSet::single(4, 0);
        let c = a.combine(&b);
        assert_eq!(c.entries(), &[(7, 1)]);
    }

    #[test]
    fn cycle_bound_ceiling() {
        let mut s = DistSet::empty();
        s.insert(7, 2); // ceil(7/2) = 4
        s.insert(3, 1); // ceil(3/1) = 3
        assert_eq!(s.cycle_bound(), Some(4));
    }

    #[test]
    fn cycle_bound_rejects_zero_omega_positive_delay() {
        let mut s = DistSet::empty();
        s.insert(1, 0);
        assert_eq!(s.cycle_bound(), None);
    }

    #[test]
    fn cycle_bound_negative_delays_ok() {
        let mut s = DistSet::empty();
        s.insert(-2, 0);
        s.insert(-1, 1);
        assert_eq!(s.cycle_bound(), Some(0));
    }

    fn cyclic_graph(edges: &[(u32, u32, u32, i64)], n: usize) -> DepGraph {
        let mut g = DepGraph::new();
        for _ in 0..n {
            g.add_node(Node::op(
                Op::new(Opcode::Const, Some(VReg(0)), vec![Imm::I(0).into()]),
                ReservationTable::empty(),
            ));
        }
        for &(a, b, omega, d) in edges {
            g.add_edge(DepEdge {
                from: NodeId(a),
                to: NodeId(b),
                omega,
                delay: d,
                kind: DepKind::True,
            });
        }
        g
    }

    #[test]
    fn closure_of_two_node_recurrence() {
        // u -> v (d=7, omega=0), v -> u (d=1, omega=1): a 7-cycle FP add
        // feeding itself through a move. RecMII = ceil(8/1) = 8.
        let g = cyclic_graph(&[(0, 1, 0, 7), (1, 0, 1, 1)], 2);
        let scc = tarjan(&g);
        assert_eq!(scc.len(), 1);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert_eq!(cl.recurrence_mii(), Some(8));
        assert_eq!(cl.dist(NodeId(0), NodeId(1)).eval(8), Some(7));
        // v -> u at s=8: 1 - 8 = -7.
        assert_eq!(cl.dist(NodeId(1), NodeId(0)).eval(8), Some(-7));
    }

    #[test]
    fn closure_self_edge_recurrence() {
        // An accumulator: self edge d=2, omega=1 => RecMII 2.
        let g = cyclic_graph(&[(0, 0, 1, 2)], 1);
        let scc = tarjan(&g);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert_eq!(cl.recurrence_mii(), Some(2));
    }

    #[test]
    fn closure_longest_path_chooses_best_route() {
        // Two routes 0 -> 1: direct (d=1) and through 2 (d=3+3). The
        // component is closed by a back edge 1 -> 0 with omega=1.
        let g = cyclic_graph(
            &[
                (0, 1, 0, 1),
                (0, 2, 0, 3),
                (2, 1, 0, 3),
                (1, 0, 1, 0),
            ],
            3,
        );
        let scc = tarjan(&g);
        assert_eq!(scc.len(), 1);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert_eq!(cl.dist(NodeId(0), NodeId(1)).eval(100), Some(6));
        assert_eq!(cl.recurrence_mii(), Some(6));
    }

    #[test]
    fn closure_keeps_incomparable_paths() {
        // 0 -> 1 directly (d=10, omega=1) or (d=2, omega=0): at small s the
        // omega=1 path dominates; at large s the omega=0 path does.
        let g = cyclic_graph(&[(0, 1, 1, 10), (0, 1, 0, 2), (1, 0, 1, 0)], 2);
        let scc = tarjan(&g);
        let cl = SccClosure::compute(&g, &scc, 0);
        let d = cl.dist(NodeId(0), NodeId(1));
        assert!(d.entries().contains(&(10, 1)), "{d}");
        assert!(d.entries().contains(&(2, 0)), "{d}");
        // Evaluate at feasible intervals (>= the recurrence bound of 5,
        // from the cycle d=10, omega=2): the omega=1 entry dominates at
        // the bound, the omega=0 entry at large intervals.
        assert_eq!(cl.recurrence_mii(), Some(5));
        assert_eq!(d.eval(5), Some(5)); // 10 - 5 > 2
        assert_eq!(d.eval(9), Some(2)); // 10 - 9 < 2
    }

    #[test]
    fn contains_checks_membership() {
        let g = cyclic_graph(&[(0, 1, 0, 1), (1, 0, 1, 1), (2, 2, 1, 1)], 3);
        let scc = tarjan(&g);
        // Find the component containing node 0.
        let c0 = scc.component_of(NodeId(0));
        let cl = SccClosure::compute(&g, &scc, c0);
        assert!(cl.contains(NodeId(0)));
        assert!(cl.contains(NodeId(1)));
        assert!(!cl.contains(NodeId(2)));
    }
}
