//! All-points longest paths with a *symbolic* initiation interval.
//!
//! The paper's preprocessing step (§2.2.2): "compute the closure of the
//! precedence constraints in each connected component by solving the
//! all-points longest path problem for each component … using a symbolic
//! value to stand for the initiation interval."
//!
//! A path's weight is `d(P) - s * omega(P)` — a *linear function* of the
//! initiation interval `s`, determined by the pair `(d, omega)` of summed
//! delays and iteration differences. We therefore represent distances as
//! Pareto sets of such pairs: one pair dominates another if its weight is
//! at least as large **for every** `s >= 1`, i.e. if it has no larger
//! `omega` and no smaller `d`.
//!
//! ## Data layout (the scheduler's hot path)
//!
//! This closure is computed once per loop but dominates the scheduler's
//! allocation profile, so the representation is flat: the `k × k` distance
//! matrix is a single row-major `Vec<DistSet>`, each [`DistSet`] stores its
//! first two Pareto entries inline (most sets hold one or two), and
//! relaxation runs **dirty-source Gauss–Seidel sweeps** over `(source,
//! node)` cells — a cell relaxes its out-edges only when its path set
//! changed since its last visit, instead of sweeping every edge for a
//! fixed number of rounds, and in-place updates propagate forward chains
//! end-to-end within a single sweep (a FIFO worklist, by contrast,
//! advances only one hop per queue generation and loses badly on long
//! recurrence chains).
//!
//! Termination: total iteration difference is capped (see
//! [`SccClosure::compute`]), cycles with positive `omega` therefore extend
//! a path only finitely often, and zero-omega cycles either have
//! non-positive delay (their extensions are dominated and inserted never)
//! or mark an illegal program — which is detected *before* relaxation by a
//! Bellman–Ford positive-cycle check on the zero-omega subgraph. The
//! reachable value set is finite, every insertion grows a Pareto set
//! monotonically, so the dirty flags eventually all clear.
//!
//! A naive full-sweep Bellman–Ford implementation is retained under
//! `#[cfg(any(test, feature = "slow-oracle"))]` as
//! [`SccClosure::compute_reference`]; both compute the same least fixpoint
//! (chaotic iteration over a monotone operator), which the testkit
//! property sweep checks set-for-set on random graphs.

use std::fmt;

use crate::graph::{DepGraph, NodeId};
use crate::scc::SccDecomposition;

/// Entries stored inline before a [`DistSet`] spills to the heap. Profiled
/// over the synth corpus, >95% of closure cells hold at most two Pareto
/// entries.
const INLINE_ENTRIES: usize = 2;

#[derive(Debug, Clone)]
enum Store {
    Inline {
        len: u8,
        arr: [(i64, u32); INLINE_ENTRIES],
    },
    Heap(Vec<(i64, u32)>),
}

/// A Pareto set of `(delay, omega)` path weights from one node to another.
///
/// Invariant: entries are sorted by increasing `omega` and strictly
/// increasing `delay` (otherwise a smaller-omega entry would dominate).
/// Small sets (the overwhelmingly common case) are stored inline without a
/// heap allocation.
#[derive(Debug, Clone)]
pub struct DistSet {
    store: Store,
}

impl Default for DistSet {
    fn default() -> Self {
        DistSet {
            store: Store::Inline {
                len: 0,
                arr: [(0, 0); INLINE_ENTRIES],
            },
        }
    }
}

impl PartialEq for DistSet {
    fn eq(&self, other: &Self) -> bool {
        self.entries() == other.entries()
    }
}

impl Eq for DistSet {}

impl DistSet {
    /// The empty set: no path.
    pub fn empty() -> Self {
        DistSet::default()
    }

    /// A set with a single path weight.
    pub fn single(delay: i64, omega: u32) -> Self {
        let mut s = DistSet::empty();
        s.insert(delay, omega);
        s
    }

    /// True if there is no path.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// The `(delay, omega)` pairs, sorted by `omega`.
    pub fn entries(&self) -> &[(i64, u32)] {
        match &self.store {
            Store::Inline { len, arr } => &arr[..*len as usize],
            Store::Heap(v) => v,
        }
    }

    /// Inserts a path weight, keeping only Pareto-optimal entries.
    /// Returns true if the set changed.
    pub fn insert(&mut self, delay: i64, omega: u32) -> bool {
        // Dominated by an existing entry with omega' <= omega, d' >= d?
        // (Equality on both counts as dominated: re-inserting an existing
        // weight reports "unchanged".)
        if self
            .entries()
            .iter()
            .any(|&(d, o)| o <= omega && d >= delay)
        {
            return false;
        }
        match &mut self.store {
            Store::Inline { len, arr } => {
                // Compact the survivors (entries not dominated by the new
                // weight) to the front, then splice the new entry in at its
                // sorted position — all in place.
                let n = *len as usize;
                let mut kept = 0;
                for i in 0..n {
                    let (d, o) = arr[i];
                    if !(o >= omega && d <= delay) {
                        arr[kept] = (d, o);
                        kept += 1;
                    }
                }
                let pos = arr[..kept].partition_point(|&(d, o)| (o, d) < (omega, delay));
                if kept < INLINE_ENTRIES {
                    arr.copy_within(pos..kept, pos + 1);
                    arr[pos] = (delay, omega);
                    *len = (kept + 1) as u8;
                } else {
                    // Spill: the set outgrew the inline capacity.
                    let mut v = Vec::with_capacity(INLINE_ENTRIES * 2);
                    v.extend_from_slice(&arr[..pos]);
                    v.push((delay, omega));
                    v.extend_from_slice(&arr[pos..kept]);
                    self.store = Store::Heap(v);
                }
            }
            Store::Heap(v) => {
                v.retain(|&(d, o)| !(o >= omega && d <= delay));
                let pos = v.partition_point(|&(d, o)| (o, d) < (omega, delay));
                v.insert(pos, (delay, omega));
            }
        }
        true
    }

    /// Merges another set into this one; returns true if anything changed.
    pub fn merge(&mut self, other: &DistSet) -> bool {
        let mut changed = false;
        for &(d, o) in other.entries() {
            changed |= self.insert(d, o);
        }
        changed
    }

    /// The set of weights of concatenated paths `self ++ other`.
    pub fn combine(&self, other: &DistSet) -> DistSet {
        let mut out = DistSet::empty();
        for &(d1, o1) in self.entries() {
            for &(d2, o2) in other.entries() {
                out.insert(d1 + d2, o1 + o2);
            }
        }
        out
    }

    /// Evaluates the longest-path weight for a concrete initiation
    /// interval: `max over entries of (d - s * omega)`. `None` if empty.
    pub fn eval(&self, s: u32) -> Option<i64> {
        self.entries()
            .iter()
            .map(|&(d, o)| d - (s as i64) * (o as i64))
            .max()
    }

    /// The tightest lower bound on the initiation interval implied by a
    /// *cycle* with these weights: the constraint `d - s*omega <= 0` for
    /// every entry with `omega > 0`, i.e. `s >= ceil(d / omega)`.
    ///
    /// Entries with `omega == 0` and `d > 0` mean an illegal program
    /// (a zero-distance positive-delay cycle) and yield `None`.
    pub fn cycle_bound(&self) -> Option<i64> {
        let mut bound = 0i64;
        for &(d, o) in self.entries() {
            if o == 0 {
                if d > 0 {
                    return None;
                }
            } else {
                bound = bound.max(div_ceil(d, o as i64));
            }
        }
        Some(bound)
    }
}

impl fmt::Display for DistSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (d, o)) in self.entries().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}-{o}s")?;
        }
        write!(f, "}}")
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a > 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

/// The component's internal edges, grouped CSR-style by (local) source
/// index, plus the derived relaxation caps shared by the optimized and
/// reference closures.
struct InternalEdges {
    /// `dst/delay/omega[off[u]..off[u + 1]]` are node `u`'s out-edges.
    off: Vec<u32>,
    dst: Vec<u32>,
    delay: Vec<i64>,
    omega: Vec<u32>,
    omega_cap: u32,
    /// The zero-omega subgraph contains a positive-delay cycle: the
    /// program is illegal and the closure is not computed.
    illegal: bool,
}

impl InternalEdges {
    fn gather(g: &DepGraph, scc: &SccDecomposition, comp: usize, members: &[NodeId], index_of: &[usize]) -> InternalEdges {
        let k = members.len();
        let mut off = vec![0u32; k + 1];
        for &m in members {
            for e in g.succ_edges(m) {
                if scc.comp[e.to.index()] == comp {
                    off[index_of[m.index()] + 1] += 1;
                }
            }
        }
        for u in 0..k {
            off[u + 1] += off[u];
        }
        let ne = off[k] as usize;
        let (mut dst, mut delay, mut omega) = (vec![0u32; ne], vec![0i64; ne], vec![0u32; ne]);
        let mut next = off.clone();
        let mut max_edge_omega = 0u32;
        for &m in members {
            let u = index_of[m.index()];
            for e in g.succ_edges(m) {
                if scc.comp[e.to.index()] == comp {
                    let i = next[u] as usize;
                    next[u] += 1;
                    dst[i] = index_of[e.to.index()] as u32;
                    delay[i] = e.delay;
                    omega[i] = e.omega;
                    max_edge_omega = max_edge_omega.max(e.omega);
                }
            }
        }
        let mut edges = InternalEdges {
            off,
            dst,
            delay,
            omega,
            omega_cap: max_edge_omega.saturating_mul(2).saturating_add(2),
            illegal: false,
        };
        edges.illegal = edges.has_positive_zero_omega_cycle(k);
        edges
    }

    /// Maximizing Bellman–Ford over the zero-omega edges only: a potential
    /// still improving after `k` full sweeps proves a positive-delay cycle
    /// with no iteration distance — an illegal program. Running this first
    /// keeps the relaxation loops free of divergence guards.
    fn has_positive_zero_omega_cycle(&self, k: usize) -> bool {
        let mut pot = vec![0i64; k];
        for _ in 0..=k {
            let mut changed = false;
            for u in 0..k {
                for i in self.off[u] as usize..self.off[u + 1] as usize {
                    if self.omega[i] == 0 {
                        let cand = pot[u] + self.delay[i];
                        let v = self.dst[i] as usize;
                        if cand > pot[v] {
                            pot[v] = cand;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return false;
            }
        }
        true
    }
}

/// The all-points longest-path closure of one strongly connected
/// component, with symbolic initiation interval.
#[derive(Debug, Clone)]
pub struct SccClosure {
    /// Members of the component, ascending.
    pub members: Vec<NodeId>,
    /// Component size (`members.len()`), the stride of `dist`.
    k: usize,
    /// Row-major `k × k` matrix: `dist[i * k + j]` is the Pareto set of
    /// path weights from `members[i]` to `members[j]` (paths of length
    /// >= 1 edge; `i == j` gives cycles).
    dist: Vec<DistSet>,
    /// Maps a node id to its index in `members`.
    index_of: Vec<usize>,
    max_node: usize,
    /// The zero-omega subgraph has a positive-delay cycle; `dist` is
    /// empty and [`recurrence_mii`](Self::recurrence_mii) reports `None`.
    illegal: bool,
}

impl SccClosure {
    /// Computes the closure of component `comp` of `scc` within `g`,
    /// considering only edges internal to the component. Equivalent to
    /// [`compute_counted`](Self::compute_counted) without the counter.
    ///
    /// Total iteration difference along a path is capped at a small
    /// multiple of the largest single-edge omega. The cap keeps the
    /// Pareto sets tiny — without it, cycle extensions `(t*d, t*omega)`
    /// are pairwise incomparable and large components (e.g. unrolled
    /// bodies glued together by conservative anti edges) blow the closure
    /// up combinatorially. High-omega composite cycles can never raise
    /// the recurrence bound anyway (the mediant inequality bounds a
    /// composite cycle's `d/omega` by its worst sub-cycle), and any range
    /// constraint the cap hides merely costs the search a failed,
    /// *validated* attempt — never soundness.
    pub fn compute(g: &DepGraph, scc: &SccDecomposition, comp: usize) -> SccClosure {
        Self::compute_counted(g, scc, comp).0
    }

    /// [`compute`](Self::compute), additionally returning the number of
    /// relaxation steps (Pareto insert attempts) the sweeps performed —
    /// the closure-cost counter surfaced through
    /// [`crate::stats::SchedTelemetry`].
    pub fn compute_counted(
        g: &DepGraph,
        scc: &SccDecomposition,
        comp: usize,
    ) -> (SccClosure, u64) {
        let members = scc.members[comp].clone();
        let k = members.len();
        let max_node = g.num_nodes();
        let mut index_of = vec![usize::MAX; max_node];
        for (i, m) in members.iter().enumerate() {
            index_of[m.index()] = i;
        }
        let edges = InternalEdges::gather(g, scc, comp, &members, &index_of);
        let mut closure = SccClosure {
            members,
            k,
            dist: vec![DistSet::empty(); k * k],
            index_of,
            max_node,
            illegal: edges.illegal,
        };
        if edges.illegal {
            return (closure, 0);
        }

        // Seed with the single edges, then relax to fixpoint with
        // dirty-source Gauss–Seidel sweeps: cells are visited in row-major
        // order, and a cell relaxes its out-edges only when its path set
        // changed since its last visit. Updates are in place, so a change
        // at `(i, u)` reaches `(i, v)` within the *same* sweep whenever
        // `u`'s cell precedes `v`'s — a forward chain propagates
        // end-to-end in one pass, where a FIFO worklist advances one hop
        // per queue generation. The fixpoint itself is order independent
        // (dominated entries only ever produce dominated extensions), so
        // this matches the reference sweep set-for-set.
        let dist = &mut closure.dist;
        let mut dirty = vec![false; k * k];
        for u in 0..k {
            for i in edges.off[u] as usize..edges.off[u + 1] as usize {
                dist[u * k + edges.dst[i] as usize].insert(edges.delay[i], edges.omega[i]);
            }
        }
        for (c, d) in dirty.iter_mut().enumerate() {
            *d = !dist[c].is_empty();
        }

        let mut relaxations = 0u64;
        let mut self_scratch: Vec<(i64, u32)> = Vec::new();
        loop {
            let mut visited_any = false;
            for c in 0..k * k {
                if !dirty[c] {
                    continue;
                }
                visited_any = true;
                dirty[c] = false;
                let (i, u) = (c / k, c % k);
                for ei in edges.off[u] as usize..edges.off[u + 1] as usize {
                    let v = edges.dst[ei] as usize;
                    let (ed, eo) = (edges.delay[ei], edges.omega[ei]);
                    let cv = i * k + v;
                    let mut changed = false;
                    if cv != c {
                        // Disjoint cells of the flat matrix: split it so the
                        // source set can be read while the target mutates.
                        let (src, tgt) = if c < cv {
                            let (a, b) = dist.split_at_mut(cv);
                            (&a[c], &mut b[0])
                        } else {
                            let (a, b) = dist.split_at_mut(c);
                            (&b[0], &mut a[cv])
                        };
                        for &(pd, po) in src.entries() {
                            // Widened add: a saturated omega_cap (u32::MAX)
                            // must still prune extensions past it.
                            let no = po as u64 + eo as u64;
                            if no <= edges.omega_cap as u64 {
                                relaxations += 1;
                                changed |= tgt.insert(pd + ed, no as u32);
                            }
                        }
                    } else {
                        // A self edge extends a cell into itself: snapshot
                        // the entries into a scratch buffer reused across
                        // the whole computation (no per-extension
                        // allocation).
                        self_scratch.clear();
                        self_scratch.extend_from_slice(dist[c].entries());
                        for &(pd, po) in &self_scratch {
                            let no = po as u64 + eo as u64;
                            if no <= edges.omega_cap as u64 {
                                relaxations += 1;
                                changed |= dist[c].insert(pd + ed, no as u32);
                            }
                        }
                    }
                    if changed {
                        dirty[cv] = true;
                    }
                }
            }
            if !visited_any {
                break;
            }
        }
        (closure, relaxations)
    }

    /// The retained naive closure: full edge sweeps to fixpoint over the
    /// same capped value space, used as a differential oracle for
    /// [`compute`](Self::compute) (testkit property sweep) and as the
    /// baseline of the `hotpath` benchmark. Kept allocation-free in the
    /// inner loop by splitting each matrix row instead of buffering
    /// extensions.
    #[cfg(any(test, feature = "slow-oracle"))]
    pub fn compute_reference(g: &DepGraph, scc: &SccDecomposition, comp: usize) -> SccClosure {
        let members = scc.members[comp].clone();
        let k = members.len();
        let max_node = g.num_nodes();
        let mut index_of = vec![usize::MAX; max_node];
        for (i, m) in members.iter().enumerate() {
            index_of[m.index()] = i;
        }
        let edges = InternalEdges::gather(g, scc, comp, &members, &index_of);
        if edges.illegal {
            return SccClosure {
                members,
                k,
                dist: vec![DistSet::empty(); k * k],
                index_of,
                max_node,
                illegal: true,
            };
        }
        let mut dist: Vec<Vec<DistSet>> = vec![vec![DistSet::empty(); k]; k];
        for (u, row) in dist.iter_mut().enumerate() {
            for i in edges.off[u] as usize..edges.off[u + 1] as usize {
                row[edges.dst[i] as usize].insert(edges.delay[i], edges.omega[i]);
            }
        }
        let mut self_scratch: Vec<(i64, u32)> = Vec::new();
        loop {
            let mut changed = false;
            for u in 0..k {
                for ei in edges.off[u] as usize..edges.off[u + 1] as usize {
                    let v = edges.dst[ei] as usize;
                    let (ed, eo) = (edges.delay[ei], edges.omega[ei]);
                    #[allow(clippy::needless_range_loop)] // row i is split below
                    for i in 0..k {
                        let row = &mut dist[i];
                        if u != v {
                            let (src, tgt) = if u < v {
                                let (a, b) = row.split_at_mut(v);
                                (&a[u], &mut b[0])
                            } else {
                                let (a, b) = row.split_at_mut(u);
                                (&b[0], &mut a[v])
                            };
                            for &(pd, po) in src.entries() {
                                let no = po as u64 + eo as u64;
                                if no <= edges.omega_cap as u64 {
                                    changed |= tgt.insert(pd + ed, no as u32);
                                }
                            }
                        } else {
                            self_scratch.clear();
                            self_scratch.extend_from_slice(row[u].entries());
                            for &(pd, po) in &self_scratch {
                                let no = po as u64 + eo as u64;
                                if no <= edges.omega_cap as u64 {
                                    changed |= row[u].insert(pd + ed, no as u32);
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        SccClosure {
            members,
            k,
            dist: dist.into_iter().flatten().collect(),
            index_of,
            max_node,
            illegal: false,
        }
    }

    /// Path-weight set from `a` to `b` (both must be members).
    pub fn dist(&self, a: NodeId, b: NodeId) -> &DistSet {
        let i = self.index_of[a.index()];
        let j = self.index_of[b.index()];
        &self.dist[i * self.k + j]
    }

    /// Iterates the flat closure matrix: every ordered member pair
    /// `(a, b)` with a non-empty path-weight set, including `a == b`
    /// (cycles through `a`). This is the propagator feed of the exact-II
    /// oracle (`crate::optimal`): instantiating each set at a candidate
    /// interval seeds the concrete longest-path matrix with every bound
    /// the symbolic closure already knows.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, &DistSet)> + '_ {
        self.members.iter().enumerate().flat_map(move |(i, &a)| {
            self.members.iter().enumerate().filter_map(move |(j, &b)| {
                let ds = &self.dist[i * self.k + j];
                (!ds.is_empty()).then_some((a, b, ds))
            })
        })
    }

    /// True if `n` belongs to this component.
    pub fn contains(&self, n: NodeId) -> bool {
        n.index() < self.max_node && self.index_of[n.index()] != usize::MAX
    }

    /// True if the component's zero-omega subgraph has a positive-delay
    /// cycle (an illegal program); the distance matrix is empty then.
    pub fn is_illegal(&self) -> bool {
        self.illegal
    }

    /// True if `other` describes the same component with the identical
    /// distance matrix — the differential-oracle equality used by the
    /// property sweep and the `hotpath` benchmark.
    pub fn same_closure(&self, other: &SccClosure) -> bool {
        self.members == other.members && self.illegal == other.illegal && self.dist == other.dist
    }

    /// The recurrence-constrained lower bound on the initiation interval
    /// contributed by this component: `max over cycles c of
    /// ceil(d(c) / omega(c))` (§2.2, precedence constraints).
    ///
    /// Returns `None` for an illegal zero-omega positive-delay cycle.
    pub fn recurrence_mii(&self) -> Option<i64> {
        if self.illegal {
            return None;
        }
        let mut bound = 0i64;
        for i in 0..self.k {
            bound = bound.max(self.dist[i * self.k + i].cycle_bound()?);
        }
        Some(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepEdge, DepKind, Node};
    use crate::scc::tarjan;
    use ir::{Imm, Op, Opcode, VReg};
    use machine::ReservationTable;

    #[test]
    fn distset_pareto_pruning() {
        let mut s = DistSet::empty();
        assert!(s.insert(5, 1));
        assert!(!s.insert(4, 1), "dominated: same omega, smaller d");
        assert!(!s.insert(5, 2), "dominated: larger omega, same d");
        assert!(s.insert(9, 2), "larger d at larger omega is incomparable");
        assert!(s.insert(2, 0));
        assert_eq!(s.entries(), &[(2, 0), (5, 1), (9, 2)]);
    }

    #[test]
    fn distset_insert_removes_dominated() {
        let mut s = DistSet::empty();
        s.insert(3, 2);
        s.insert(5, 1); // dominates (3, 2)
        assert_eq!(s.entries(), &[(5, 1)]);
    }

    #[test]
    fn distset_equal_pair_reinsert_is_unchanged() {
        let mut s = DistSet::empty();
        assert!(s.insert(4, 2));
        assert!(!s.insert(4, 2), "identical (d, omega) must report false");
        assert_eq!(s.entries(), &[(4, 2)]);
        // Same holds after spilling to the heap representation.
        assert!(s.insert(1, 0));
        assert!(s.insert(9, 5));
        assert!(s.entries().len() > INLINE_ENTRIES);
        assert!(!s.insert(9, 5));
        assert!(!s.insert(1, 0));
    }

    #[test]
    fn distset_negative_delay_dominance() {
        let mut s = DistSet::empty();
        assert!(s.insert(-3, 1));
        assert!(!s.insert(-5, 1), "more negative delay at same omega loses");
        assert!(!s.insert(-3, 2), "same delay at larger omega loses");
        assert!(!s.insert(-4, 3), "worse on both axes loses");
        assert_eq!(s.entries(), &[(-3, 1)]);
    }

    #[test]
    fn distset_negative_delays_keep_pareto_order() {
        let mut s = DistSet::empty();
        s.insert(-3, 1);
        assert!(s.insert(-1, 2), "larger delay at larger omega is incomparable");
        assert_eq!(s.entries(), &[(-3, 1), (-1, 2)]);
        assert!(s.insert(0, 0), "dominates both");
        assert_eq!(s.entries(), &[(0, 0)]);
    }

    #[test]
    fn distset_inline_spill_roundtrip() {
        // Fill past the inline capacity with pairwise-incomparable entries
        // and check ordering + equality semantics across the spill.
        let mut s = DistSet::empty();
        for (d, o) in [(1, 0), (3, 1), (5, 2), (7, 3), (9, 4)] {
            assert!(s.insert(d, o));
        }
        assert_eq!(s.entries(), &[(1, 0), (3, 1), (5, 2), (7, 3), (9, 4)]);
        let mut t = DistSet::empty();
        for (d, o) in [(9, 4), (7, 3), (5, 2), (3, 1), (1, 0)] {
            assert!(t.insert(d, o));
        }
        assert_eq!(s, t, "equality is representation independent");
    }

    #[test]
    fn distset_eval_maximizes() {
        let mut s = DistSet::empty();
        s.insert(2, 0);
        s.insert(9, 2);
        // s = 1: max(2, 9-2) = 7. s = 4: max(2, 1) = 2. s = 10: max(2, -11) = 2.
        assert_eq!(s.eval(1), Some(7));
        assert_eq!(s.eval(4), Some(2));
        assert_eq!(s.eval(10), Some(2));
        assert_eq!(DistSet::empty().eval(3), None);
    }

    #[test]
    fn distset_combine_sums() {
        let a = DistSet::single(3, 1);
        let b = DistSet::single(4, 0);
        let c = a.combine(&b);
        assert_eq!(c.entries(), &[(7, 1)]);
    }

    #[test]
    fn cycle_bound_ceiling() {
        let mut s = DistSet::empty();
        s.insert(7, 2); // ceil(7/2) = 4
        s.insert(3, 1); // ceil(3/1) = 3
        assert_eq!(s.cycle_bound(), Some(4));
    }

    #[test]
    fn cycle_bound_rejects_zero_omega_positive_delay() {
        let mut s = DistSet::empty();
        s.insert(1, 0);
        assert_eq!(s.cycle_bound(), None);
    }

    #[test]
    fn cycle_bound_negative_delays_ok() {
        let mut s = DistSet::empty();
        s.insert(-2, 0);
        s.insert(-1, 1);
        assert_eq!(s.cycle_bound(), Some(0));
    }

    fn cyclic_graph(edges: &[(u32, u32, u32, i64)], n: usize) -> DepGraph {
        let mut g = DepGraph::new();
        for _ in 0..n {
            g.add_node(Node::op(
                Op::new(Opcode::Const, Some(VReg(0)), vec![Imm::I(0).into()]),
                ReservationTable::empty(),
            ));
        }
        for &(a, b, omega, d) in edges {
            g.add_edge(DepEdge::new(NodeId(a), NodeId(b), omega, d, DepKind::True));
        }
        g
    }

    #[test]
    fn closure_of_two_node_recurrence() {
        // u -> v (d=7, omega=0), v -> u (d=1, omega=1): a 7-cycle FP add
        // feeding itself through a move. RecMII = ceil(8/1) = 8.
        let g = cyclic_graph(&[(0, 1, 0, 7), (1, 0, 1, 1)], 2);
        let scc = tarjan(&g);
        assert_eq!(scc.len(), 1);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert_eq!(cl.recurrence_mii(), Some(8));
        assert_eq!(cl.dist(NodeId(0), NodeId(1)).eval(8), Some(7));
        // v -> u at s=8: 1 - 8 = -7.
        assert_eq!(cl.dist(NodeId(1), NodeId(0)).eval(8), Some(-7));
    }

    #[test]
    fn closure_self_edge_recurrence() {
        // An accumulator: self edge d=2, omega=1 => RecMII 2.
        let g = cyclic_graph(&[(0, 0, 1, 2)], 1);
        let scc = tarjan(&g);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert_eq!(cl.recurrence_mii(), Some(2));
    }

    #[test]
    fn closure_longest_path_chooses_best_route() {
        // Two routes 0 -> 1: direct (d=1) and through 2 (d=3+3). The
        // component is closed by a back edge 1 -> 0 with omega=1.
        let g = cyclic_graph(
            &[
                (0, 1, 0, 1),
                (0, 2, 0, 3),
                (2, 1, 0, 3),
                (1, 0, 1, 0),
            ],
            3,
        );
        let scc = tarjan(&g);
        assert_eq!(scc.len(), 1);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert_eq!(cl.dist(NodeId(0), NodeId(1)).eval(100), Some(6));
        assert_eq!(cl.recurrence_mii(), Some(6));
    }

    #[test]
    fn closure_keeps_incomparable_paths() {
        // 0 -> 1 directly (d=10, omega=1) or (d=2, omega=0): at small s the
        // omega=1 path dominates; at large s the omega=0 path does.
        let g = cyclic_graph(&[(0, 1, 1, 10), (0, 1, 0, 2), (1, 0, 1, 0)], 2);
        let scc = tarjan(&g);
        let cl = SccClosure::compute(&g, &scc, 0);
        let d = cl.dist(NodeId(0), NodeId(1));
        assert!(d.entries().contains(&(10, 1)), "{d}");
        assert!(d.entries().contains(&(2, 0)), "{d}");
        // Evaluate at feasible intervals (>= the recurrence bound of 5,
        // from the cycle d=10, omega=2): the omega=1 entry dominates at
        // the bound, the omega=0 entry at large intervals.
        assert_eq!(cl.recurrence_mii(), Some(5));
        assert_eq!(d.eval(5), Some(5)); // 10 - 5 > 2
        assert_eq!(d.eval(9), Some(2)); // 10 - 9 < 2
    }

    #[test]
    fn contains_checks_membership() {
        let g = cyclic_graph(&[(0, 1, 0, 1), (1, 0, 1, 1), (2, 2, 1, 1)], 3);
        let scc = tarjan(&g);
        // Find the component containing node 0.
        let c0 = scc.component_of(NodeId(0));
        let cl = SccClosure::compute(&g, &scc, c0);
        assert!(cl.contains(NodeId(0)));
        assert!(cl.contains(NodeId(1)));
        assert!(!cl.contains(NodeId(2)));
    }

    #[test]
    fn illegal_zero_omega_cycle_detected_before_relaxation() {
        // 0 -> 1 -> 0 with omega 0 and positive total delay: illegal.
        let g = cyclic_graph(&[(0, 1, 0, 2), (1, 0, 0, 1)], 2);
        let scc = tarjan(&g);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert!(cl.is_illegal());
        assert_eq!(cl.recurrence_mii(), None);
        let oracle = SccClosure::compute_reference(&g, &scc, 0);
        assert!(oracle.is_illegal());
        assert!(cl.same_closure(&oracle));
    }

    #[test]
    fn legal_zero_omega_cycle_with_nonpositive_delay_terminates() {
        // A zero-omega cycle with total delay 0 is legal (if pointless);
        // both closures must terminate and agree.
        let g = cyclic_graph(&[(0, 1, 0, 3), (1, 0, 0, -3), (0, 0, 1, 1)], 2);
        let scc = tarjan(&g);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert!(!cl.is_illegal());
        assert_eq!(cl.recurrence_mii(), Some(1));
        let oracle = SccClosure::compute_reference(&g, &scc, 0);
        assert!(cl.same_closure(&oracle), "optimized and oracle disagree");
    }

    #[test]
    fn omega_cap_saturates_at_boundary() {
        // A self edge with omega = u32::MAX saturates the cap computation
        // (MAX * 2 + 2 would overflow); the relaxation must still prune
        // the doubled-omega extension rather than wrap around, and both
        // closures terminate with the single seed entry.
        let g = cyclic_graph(&[(0, 0, u32::MAX, 3)], 1);
        let scc = tarjan(&g);
        let cl = SccClosure::compute(&g, &scc, 0);
        assert_eq!(cl.dist(NodeId(0), NodeId(0)).entries(), &[(3, u32::MAX)]);
        let oracle = SccClosure::compute_reference(&g, &scc, 0);
        assert!(cl.same_closure(&oracle));
    }

    /// The differential-oracle sweep: on 256 random graphs (mixed sizes,
    /// mixed omegas, negative delays, self edges, illegal zero-omega
    /// cycles included) the dirty-sweep closure of **every** component is
    /// set-for-set identical to the naive full-sweep fixpoint.
    #[test]
    fn prop_dirty_sweep_closure_matches_oracle() {
        use crate::testkit::{check, shrink_vec, Config, SplitMix64};
        type Case = (usize, Vec<(u32, u32, u32, i64)>);
        let gen = |rng: &mut SplitMix64| -> Case {
            let n = rng.range_usize(1, 8);
            let edges = rng.vec_of(0, n * n + n + 1, |r| {
                (
                    r.range_u32(0, n as u32),
                    r.range_u32(0, n as u32),
                    // Bias toward small omegas — the realistic regime —
                    // but include outliers past typical caps.
                    if r.chance(0.15) { r.range_u32(2, 6) } else { r.range_u32(0, 2) },
                    r.range_i64(-4, 10),
                )
            });
            (n, edges)
        };
        let shrink = |case: &Case| -> Vec<Case> {
            shrink_vec(&case.1, |_| Vec::new())
                .into_iter()
                .map(|es| (case.0, es))
                .collect()
        };
        let prop = |case: &Case| -> Result<(), String> {
            let g = cyclic_graph(&case.1, case.0);
            let scc = tarjan(&g);
            for c in 0..scc.len() {
                let (fast, _) = SccClosure::compute_counted(&g, &scc, c);
                let slow = SccClosure::compute_reference(&g, &scc, c);
                if !fast.same_closure(&slow) {
                    return Err(format!(
                        "component {c} diverged: optimized {:?} vs oracle {:?}",
                        fast.dist, slow.dist
                    ));
                }
            }
            Ok(())
        };
        check(
            "dirty_sweep_closure_matches_oracle",
            Config::with_cases(256),
            gen,
            shrink,
            prop,
        );
    }

    #[test]
    fn closure_matches_reference_on_dense_component() {
        // A denser component with mixed omegas exercises the dirty
        // sweeps against the full-sweep oracle.
        let g = cyclic_graph(
            &[
                (0, 1, 0, 4),
                (1, 2, 0, 1),
                (2, 0, 1, 2),
                (2, 3, 0, 3),
                (3, 1, 2, -1),
                (0, 3, 1, 6),
                (3, 3, 1, 1),
            ],
            4,
        );
        let scc = tarjan(&g);
        assert_eq!(scc.len(), 1);
        let (cl, relax) = SccClosure::compute_counted(&g, &scc, 0);
        assert!(relax > 0, "relaxation counter must move");
        let oracle = SccClosure::compute_reference(&g, &scc, 0);
        assert!(cl.same_closure(&oracle));
    }
}
