//! Source-level loop unrolling — the §5.1 comparison baseline.
//!
//! Trace scheduling "relies primarily on source code unrolling" to expose
//! parallelism: the loop body is replicated, the copies are compacted as
//! one big block, and the pipelines fill and drain once per *unrolled*
//! body instead of once per iteration. The paper's argument (§5.1) is
//! that this can approach, but never reach, software pipelining's
//! throughput — while the code grows linearly with the unroll degree and
//! the right degree must be found by experimentation.
//!
//! This transform unrolls innermost simple loops with compile-time trip
//! counts by a factor `f`: the body (which already ends with its counter
//! increment) is replicated `f` times, memory metadata is rescaled to the
//! new iteration length (`stride * f`, copy `c` offset `+ stride * c`),
//! and a remainder loop covers `trip mod f`.

use ir::{MemPattern, Op, Program, Stmt, TripCount};

/// Unrolls every innermost simple loop (straight-line body, compile-time
/// trip count) by `factor`. Other loops are left untouched. `factor <= 1`
/// returns the program unchanged.
pub fn unroll_innermost(p: &Program, factor: u32) -> Program {
    let mut out = p.clone();
    if factor > 1 {
        unroll_stmts(&mut out.body, factor);
    }
    out
}

fn unroll_stmts(stmts: &mut [Stmt], factor: u32) {
    for s in stmts.iter_mut() {
        match s {
            Stmt::Loop(l) => {
                let simple = l.body.iter().all(|b| matches!(b, Stmt::Op(_)));
                match (simple, l.trip) {
                    (true, TripCount::Const(n)) if n >= factor => {
                        let body: Vec<Op> = l
                            .body
                            .iter()
                            .map(|b| match b {
                                Stmt::Op(op) => op.clone(),
                                _ => unreachable!("simple body"),
                            })
                            .collect();
                        let mut unrolled = Vec::new();
                        for c in 0..factor {
                            for op in &body {
                                unrolled.push(Stmt::Op(rescale(op, c as i64, factor as i64)));
                            }
                        }
                        let main_trips = n / factor;
                        let rem = n % factor;
                        let mut replacement = Vec::new();
                        replacement.push(Stmt::Loop(ir::Loop {
                            trip: TripCount::Const(main_trips),
                            body: unrolled,
                        }));
                        if rem > 0 {
                            replacement.push(Stmt::Loop(ir::Loop {
                                trip: TripCount::Const(rem),
                                body: l.body.clone(),
                            }));
                        }
                        // Splice: replace this loop with the pair. We mark
                        // it by wrapping in a block-like loop of trip 1 to
                        // keep the statement arity; simpler: mutate in
                        // place below.
                        *s = Stmt::Loop(ir::Loop {
                            trip: TripCount::Const(1),
                            body: replacement,
                        });
                    }
                    _ => unroll_stmts(&mut l.body, factor),
                }
            }
            Stmt::If(i) => {
                unroll_stmts(&mut i.then_body, factor);
                unroll_stmts(&mut i.else_body, factor);
            }
            Stmt::Op(_) => {}
        }
    }
}

/// Adjusts one body copy's memory metadata for the unrolled iteration
/// space: the copy's subscripts are those of old iteration
/// `f*it + c`, i.e. stride scales by `f` and the offset shifts by
/// `stride * c`. (Register operands need no change: the counter update
/// ops are replicated with the body, so copy `c` reads the counter after
/// `c` increments, exactly as in the rolled loop.)
fn rescale(op: &Op, copy: i64, factor: i64) -> Op {
    let mut op = op.clone();
    if let Some(m) = &mut op.mem {
        if let MemPattern::Affine { stride, offset, .. } = &mut m.pattern {
            *offset += *stride * copy;
            *stride *= factor;
        }
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Interp, ProgramBuilder};

    fn vinc(n: u32) -> Program {
        let mut b = ProgramBuilder::new("vinc");
        let a = b.array("a", n);
        b.for_counted(TripCount::Const(n), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
        });
        b.finish()
    }

    fn run(p: &Program, n: usize) -> Vec<f32> {
        let mut it = Interp::new(p);
        for (i, w) in it.mem.iter_mut().enumerate() {
            *w = i as f32;
        }
        it.run(p).unwrap();
        it.mem[..n].to_vec()
    }

    #[test]
    fn unrolled_program_is_equivalent() {
        let p = vinc(37);
        let base = run(&p, 37);
        for f in [2u32, 3, 4, 8] {
            let u = unroll_innermost(&p, f);
            u.validate().unwrap();
            assert_eq!(run(&u, 37), base, "factor {f}");
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let p = vinc(16);
        let u = unroll_innermost(&p, 1);
        assert_eq!(u.num_ops(), p.num_ops());
    }

    #[test]
    fn remainder_loop_created_when_needed() {
        let p = vinc(10);
        let u = unroll_innermost(&p, 4);
        // 10 = 2*4 + 2: a main loop and a remainder loop.
        let Stmt::Loop(outer) = &u.body[1] else {
            panic!("wrapper loop expected");
        };
        assert_eq!(outer.trip, TripCount::Const(1));
        assert_eq!(outer.body.len(), 2);
    }

    #[test]
    fn metadata_rescaled() {
        let p = vinc(18); // 18 = 4*4 + 2: leaves a stride-1 remainder loop
        let u = unroll_innermost(&p, 4);
        let mut strides = Vec::new();
        u.for_each_op(|op| {
            if let Some(m) = &op.mem {
                if let MemPattern::Affine { stride, offset, .. } = m.pattern {
                    strides.push((stride, offset));
                }
            }
        });
        // Main unrolled loop: strides 4 with offsets 0..3 (load+store per
        // copy), then the remainder loop with the original stride 1.
        assert!(strides.iter().filter(|&&(s, _)| s == 4).count() >= 8);
        assert!(strides.iter().any(|&(s, o)| s == 4 && o == 3));
        assert!(strides.iter().any(|&(s, _)| s == 1));
    }

    #[test]
    fn unrolled_loop_still_compiles() {
        use machine::presets::warp_cell;
        let p = vinc(48);
        let u = unroll_innermost(&p, 4);
        let compiled =
            crate::compile(&u, &warp_cell(), &crate::CompileOptions::default()).unwrap();
        assert!(compiled.vliw.num_words() > 0);
    }
}
