//! The iterative modulo scheduler (§2.2).
//!
//! The driver computes the MII, then searches initiation intervals upward
//! (**linear** search by default — schedulability is not monotonic in the
//! interval and the lower bound is usually achievable, §2.2; binary search
//! is available for the ablation benches). For each candidate interval:
//!
//! 1. every nontrivial strongly connected component is scheduled on its
//!    own, in a topological order of its intra-iteration edges, placing
//!    each node at the earliest slot inside its **precedence-constrained
//!    range** (maintained with the symbolic all-points longest-path
//!    closure, instantiated at the candidate interval);
//! 2. the graph is reduced to its acyclic condensation — each component
//!    becomes a single vertex carrying the aggregate resource usage of its
//!    members — and the condensation is list-scheduled against the modulo
//!    resource reservation table, exactly like the FPS algorithm for
//!    acyclic graphs.
//!
//! Every successful schedule is re-validated edge-by-edge before being
//! returned; a validation failure is treated as "this interval did not
//! work" and the search continues, so heuristic approximations can cost
//! performance but never correctness.

use std::fmt;

use machine::{MachineDescription, ReservationTable};

use crate::graph::{DepGraph, NodeId};
use crate::mii::{rec_mii, res_mii, MiiReport};
use crate::mrt::ModuloTable;
use crate::pathalg::SccClosure;
use crate::scc::{tarjan, SccDecomposition};
use crate::schedule::Schedule;
use crate::stats::{AttemptFailure, IiAttempt, LimitingConstraint, SchedTelemetry};

/// How to search the initiation-interval space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IiSearch {
    /// Try MII, MII+1, MII+2, … (the paper's choice).
    #[default]
    Linear,
    /// FPS-style binary search between the MII and a feasible upper bound.
    /// Kept for the ablation benches; can miss the smallest feasible
    /// interval because schedulability is not monotonic.
    Binary,
}

/// Node-selection priority for the acyclic list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Maximum height (longest dependence path to any sink) first — the
    /// classic list-scheduling priority.
    #[default]
    Height,
    /// Program order (ablation baseline).
    SourceOrder,
}

/// Scheduler options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedOptions {
    /// Search strategy over candidate intervals.
    pub search: IiSearch,
    /// List-scheduling priority.
    pub priority: Priority,
    /// Hard cap on the interval search; `None` derives a bound from the
    /// body (the length of a fully serialized iteration plus slack).
    pub max_ii: Option<u32>,
}

/// Targeted perturbations for a single scheduling attempt — the knobs the
/// feedback-guided refinement driver ([`crate::refine`]) turns. The
/// default value leaves every placement decision byte-identical to the
/// unperturbed scheduler, so the baseline search never pays for the
/// machinery.
///
/// Deliberately *not* part of [`SchedOptions`]: tunings are transient
/// search state, never serialized, fingerprinted, or cached.
#[derive(Debug, Clone, Default)]
pub struct SchedTuning {
    /// Boost this condensation vertex (its index equals the SCC component
    /// id) to top list-scheduling priority — "schedule the critical
    /// recurrence first".
    pub favor_component: Option<usize>,
    /// Replace the smallest-index tie-break of the list scheduler with a
    /// SplitMix64 hash keyed by this seed (deterministic for a fixed
    /// seed; different seeds explore different tie resolutions).
    pub tie_seed: Option<u64>,
    /// Rotate the slot-scan order inside each placement window by this
    /// many positions: the scan still covers exactly the same window, but
    /// starts elsewhere, shifting which modulo rows fill up first.
    pub slot_rotation: u32,
    /// Witness row hint: per-node absolute times of a schedule known to
    /// be valid at the attempted interval (an exact-oracle witness).
    /// Components adopt the witness's internal offsets and the
    /// condensation scan prefers witness-congruent modulo rows, so the
    /// list scheduler provably re-derives a schedule at the witness's
    /// interval.
    pub rows_hint: Option<Vec<i64>>,
}

/// Deterministic tie-break hash for [`SchedTuning::tie_seed`].
fn tie_hash(seed: u64, i: usize) -> u64 {
    crate::testkit::SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .next_u64()
}

/// Result of a successful scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The validated schedule.
    pub schedule: Schedule,
    /// The lower bounds that guided the search.
    pub mii: MiiReport,
    /// How many candidate intervals were attempted.
    pub attempts: u32,
}

impl ScheduleResult {
    /// True if the achieved interval equals the theoretical lower bound.
    pub fn is_optimal(&self) -> bool {
        self.schedule.ii() == self.mii.mii()
    }

    /// Lower bound on efficiency: MII / achieved interval (the paper's
    /// Table 4-2 metric).
    pub fn efficiency(&self) -> f64 {
        self.mii.mii() as f64 / self.schedule.ii() as f64
    }
}

/// Why scheduling failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The dependence graph contains a zero-iteration-difference cycle
    /// with positive delay — the program is illegal.
    IllegalCycle,
    /// The body uses a resource the machine has zero units of: no
    /// initiation interval can ever cover the demand.
    ImpossibleResource {
        /// Name of the zero-capacity resource.
        resource: String,
    },
    /// No interval up to the cap produced a schedule.
    NoSchedule {
        /// The lower bound that started the search.
        mii: u32,
        /// The cap that ended it.
        max_ii: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::IllegalCycle => {
                f.write_str("illegal dependence cycle (omega = 0, positive delay)")
            }
            SchedError::ImpossibleResource { resource } => {
                write!(f, "body uses zero-capacity resource '{resource}'")
            }
            SchedError::NoSchedule { mii, max_ii } => {
                write!(f, "no schedule found for any interval in [{mii}, {max_ii}]")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Software-pipelines one loop body.
///
/// # Errors
///
/// Returns [`SchedError::IllegalCycle`] for malformed graphs,
/// [`SchedError::ImpossibleResource`] when the body demands a resource the
/// machine has zero units of, and [`SchedError::NoSchedule`] if the search
/// space is exhausted (the caller then falls back to an unpipelined loop).
pub fn modulo_schedule(
    g: &DepGraph,
    mach: &MachineDescription,
    opts: &SchedOptions,
) -> Result<ScheduleResult, SchedError> {
    modulo_schedule_telemetry(g, mach, opts).0
}

/// The interval-independent preprocessing of one loop: SCC decomposition,
/// the nontrivial components, and their symbolic closures. Computed once
/// per loop and shared between the MII bounds and every II attempt
/// ([`modulo_schedule_analyzed`]); previously the emission pipeline
/// computed the closures twice — once for bounds reporting and once inside
/// the scheduler.
#[derive(Debug, Clone)]
pub struct SchedAnalysis {
    /// The SCC decomposition of the dependence graph.
    pub scc: SccDecomposition,
    /// Indices of nontrivial components (size > 1 or with a self edge),
    /// ascending.
    pub nontrivial: Vec<usize>,
    /// One symbolic closure per nontrivial component, in
    /// [`nontrivial`](Self::nontrivial) order.
    pub closures: Vec<SccClosure>,
    /// Total Pareto-insert attempts the closure sweeps performed.
    pub closure_relaxations: u64,
}

impl SchedAnalysis {
    /// Runs the preprocessing for `g`.
    pub fn analyze(g: &DepGraph) -> SchedAnalysis {
        let scc = tarjan(g);
        let nontrivial: Vec<usize> = (0..scc.len())
            .filter(|&c| is_nontrivial(g, &scc, c))
            .collect();
        let mut closure_relaxations = 0u64;
        let closures: Vec<SccClosure> = nontrivial
            .iter()
            .map(|&c| {
                let (cl, relax) = SccClosure::compute_counted(g, &scc, c);
                closure_relaxations += relax;
                cl
            })
            .collect();
        SchedAnalysis {
            scc,
            nontrivial,
            closures,
            closure_relaxations,
        }
    }
}

/// Reusable buffers for the scheduler's per-II retry loop.
///
/// Every II attempt needs a modulo reservation table, a topological-order
/// workspace per component, and adjacency/indegree/`earliest`/`times`
/// buffers for the condensation list scheduler. A `SchedScratch` owns all
/// of them so a retry (or the next loop compiled on the same worker
/// thread) re-arms existing allocations instead of reallocating; buffers
/// only ever grow.
#[derive(Debug, Default)]
pub struct SchedScratch {
    /// The single modulo table, shared sequentially by component
    /// scheduling and condensation scheduling within an attempt.
    mrt: ModuloTable,
    topo: TopoScratch,
    cond: CondScratch,
    /// Table acquisitions in the current run (reset by `begin_run`); the
    /// run's first acquisition is an allocation on a fresh scratch, every
    /// later one reuses it.
    run_tables: u32,
}

#[derive(Debug, Default)]
struct TopoScratch {
    indeg: Vec<usize>,
    /// Ready nodes sorted *descending*, so the smallest id pops from the
    /// back in O(1).
    ready: Vec<NodeId>,
    order: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct CondScratch {
    /// CSR successor view of the condensation edges.
    succ_off: Vec<u32>,
    succ: Vec<(u32, i64, u32)>,
    cursor: Vec<u32>,
    indeg: Vec<usize>,
    heights: Vec<i64>,
    earliest: Vec<i64>,
    ready: Vec<usize>,
    times: Vec<i64>,
}

impl SchedScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> SchedScratch {
        SchedScratch::default()
    }

    fn begin_run(&mut self) {
        self.run_tables = 0;
    }

    /// Marks one table acquisition; must precede each `mrt.reset`.
    fn note_table(&mut self) {
        self.run_tables += 1;
    }

    fn reuses_this_run(&self) -> u32 {
        self.run_tables.saturating_sub(1)
    }
}

/// [`modulo_schedule`], additionally returning the full attempt log and
/// SCC structure (see [`crate::stats`]). The telemetry is populated on
/// both success and failure paths.
pub fn modulo_schedule_telemetry(
    g: &DepGraph,
    mach: &MachineDescription,
    opts: &SchedOptions,
) -> (Result<ScheduleResult, SchedError>, SchedTelemetry) {
    modulo_schedule_analyzed(g, mach, opts, &SchedAnalysis::analyze(g), &mut SchedScratch::new())
}

/// [`modulo_schedule_telemetry`] with the preprocessing and the scratch
/// arena supplied by the caller — the driver's workers analyze once per
/// loop and carry one scratch across all their jobs.
pub fn modulo_schedule_analyzed(
    g: &DepGraph,
    mach: &MachineDescription,
    opts: &SchedOptions,
    analysis: &SchedAnalysis,
    scratch: &mut SchedScratch,
) -> (Result<ScheduleResult, SchedError>, SchedTelemetry) {
    let mut tel = SchedTelemetry::default();
    if g.num_nodes() == 0 {
        let trivial = ScheduleResult {
            schedule: Schedule::new(Vec::new(), 1),
            mii: MiiReport {
                res_mii: 1,
                rec_mii: 0,
            },
            attempts: 0,
        };
        return (Ok(trivial), tel);
    }
    scratch.begin_run();
    let SchedAnalysis {
        scc,
        nontrivial,
        closures,
        closure_relaxations,
    } = analysis;
    tel.scc_count = scc.len();
    tel.scc_sizes = nontrivial.iter().map(|&c| scc.members[c].len()).collect();
    tel.closure_relaxations = *closure_relaxations;
    let res = match res_mii(g, mach) {
        Ok(r) => r,
        Err(z) => {
            return (
                Err(SchedError::ImpossibleResource {
                    resource: z.resource,
                }),
                tel,
            )
        }
    };
    let rec = match rec_mii(closures) {
        Ok(r) => r,
        Err(_) => return (Err(SchedError::IllegalCycle), tel),
    };
    let mii = MiiReport {
        res_mii: res,
        rec_mii: rec,
    };
    let lo = mii.mii();
    let hi = opts.max_ii.unwrap_or_else(|| default_max_ii(g, lo));

    let mut attempts = 0;
    let schedule = {
        let tuning = SchedTuning::default();
        let mut try_s = |s: u32, attempts: &mut u32, tel: &mut SchedTelemetry| -> Option<Schedule> {
            *attempts += 1;
            let outcome = schedule_at(g, mach, scc, nontrivial, closures, s, opts, &tuning, scratch)
                // Belt and braces: never return an invalid schedule.
                .and_then(|(sched, limiting)| match sched.validate(g, mach) {
                    Ok(()) => Ok((sched, limiting)),
                    Err(reason) => Err(AttemptFailure::Validation { reason }),
                });
            match outcome {
                Ok((sched, limiting)) => {
                    tel.attempts.push(IiAttempt {
                        ii: s,
                        failure: None,
                        limiting: Some(limiting),
                    });
                    Some(sched)
                }
                Err(failure) => {
                    tel.attempts.push(IiAttempt {
                        ii: s,
                        failure: Some(failure),
                        limiting: None,
                    });
                    None
                }
            }
        };
        match opts.search {
            IiSearch::Linear => {
                let mut found = None;
                for s in lo..=hi {
                    if let Some(sched) = try_s(s, &mut attempts, &mut tel) {
                        found = Some(sched);
                        break;
                    }
                }
                found
            }
            IiSearch::Binary => binary_search(lo, hi, &mut attempts, &mut tel, &mut try_s),
        }
    };
    tel.scratch_reuses = scratch.reuses_this_run();

    let result = match schedule {
        Some(schedule) => Ok(ScheduleResult {
            schedule,
            mii,
            attempts,
        }),
        None => Err(SchedError::NoSchedule { mii: lo, max_ii: hi }),
    };
    (result, tel)
}

/// FPS-style binary search: establish a feasible upper bound by doubling,
/// then bisect. Assumes (incorrectly, in general) that schedulability is
/// monotonic — that is the point of the ablation.
fn binary_search(
    lo: u32,
    hi: u32,
    attempts: &mut u32,
    tel: &mut SchedTelemetry,
    mut try_s: impl FnMut(u32, &mut u32, &mut SchedTelemetry) -> Option<Schedule>,
) -> Option<Schedule> {
    // Find some feasible interval by doubling from lo.
    let mut feasible: Option<(u32, Schedule)> = None;
    let mut probe = lo;
    loop {
        if let Some(s) = try_s(probe, attempts, tel) {
            feasible = Some((probe, s));
            break;
        }
        if probe >= hi {
            break;
        }
        probe = (probe * 2).clamp(lo + 1, hi);
    }
    let (mut best_ii, mut best) = feasible?;
    let (mut a, mut b) = (lo, best_ii);
    while a < b {
        let mid = (a + b) / 2;
        if mid == best_ii {
            break;
        }
        match try_s(mid, attempts, tel) {
            Some(s) => {
                best_ii = mid;
                best = s;
                b = mid;
            }
            None => a = mid + 1,
        }
    }
    Some(best)
}

fn is_nontrivial(g: &DepGraph, scc: &SccDecomposition, comp: usize) -> bool {
    scc.members[comp].len() > 1 || {
        let n = scc.members[comp][0];
        g.succ_edges(n).any(|e| e.to == n)
    }
}

/// A permissive default cap on the interval search: a fully serialized
/// iteration (every node after the completion of everything before it)
/// always admits a modulo schedule at its own length, so anything beyond
/// that plus slack is hopeless. The cap is never clamped below that
/// serialized length — a dense body (or a single long reduced construct,
/// whose no-wrap rule needs `s >= len`) may only become schedulable well
/// past `mii`, and capping earlier would misreport a schedulable loop as
/// `NoSchedule`. Callers wanting a tighter search set
/// [`SchedOptions::max_ii`].
pub(crate) fn default_max_ii(g: &DepGraph, mii: u32) -> u32 {
    let total_len: i64 = g.nodes().iter().map(|n| n.len as i64).sum();
    let total_delay: i64 = g
        .edges()
        .iter()
        .filter(|e| e.omega == 0)
        .map(|e| e.delay.max(0))
        .sum();
    (mii as i64 + total_len + total_delay + 8).min(u32::MAX as i64) as u32
}

/// A single scheduling attempt at a fixed interval with explicit
/// perturbations, validated before returning — the refinement driver's
/// entry point. On success the schedule passed [`Schedule::validate`]
/// against `g`, and the [`LimitingConstraint`] names whichever of
/// resources/recurrence bound the final placement.
///
/// # Errors
///
/// Returns the abort cause ([`AttemptFailure`]) when no valid schedule
/// exists at `s` under this tuning.
pub fn attempt_at(
    g: &DepGraph,
    mach: &MachineDescription,
    analysis: &SchedAnalysis,
    s: u32,
    opts: &SchedOptions,
    tuning: &SchedTuning,
    scratch: &mut SchedScratch,
) -> Result<(Schedule, LimitingConstraint), AttemptFailure> {
    if g.num_nodes() == 0 {
        return Ok((Schedule::new(Vec::new(), s), LimitingConstraint::Recurrence));
    }
    let (sched, limiting) = schedule_at(
        g,
        mach,
        &analysis.scc,
        &analysis.nontrivial,
        &analysis.closures,
        s,
        opts,
        tuning,
        scratch,
    )?;
    match sched.validate(g, mach) {
        Ok(()) => Ok((sched, limiting)),
        Err(reason) => Err(AttemptFailure::Validation { reason }),
    }
}

/// One attempt at a fixed initiation interval. Failures carry the abort
/// cause for the telemetry log.
#[allow(clippy::too_many_arguments)] // internal; bundled by modulo_schedule_analyzed
fn schedule_at(
    g: &DepGraph,
    mach: &MachineDescription,
    scc: &SccDecomposition,
    nontrivial: &[usize],
    closures: &[SccClosure],
    s: u32,
    opts: &SchedOptions,
    tuning: &SchedTuning,
    scratch: &mut SchedScratch,
) -> Result<(Schedule, LimitingConstraint), AttemptFailure> {
    let mut resource_delayed = false;
    // 1. Schedule each nontrivial component individually.
    let mut comp_offsets: Vec<Option<Vec<(NodeId, i64)>>> = vec![None; scc.len()];
    for (ci, (cl, &c)) in closures.iter().zip(nontrivial).enumerate() {
        let (offsets, delayed) = schedule_component(g, mach, cl, s, ci, tuning, scratch)?;
        resource_delayed |= delayed;
        comp_offsets[c] = Some(offsets);
    }

    // 2. Build the acyclic condensation.
    let cond = condense(g, scc, &comp_offsets);

    // 3. List-schedule the condensation against a modulo table.
    let (ctimes, delayed) =
        list_schedule_condensation(&cond, mach, s, opts.priority, tuning, scratch)?;
    resource_delayed |= delayed;

    // 4. Expand back to per-node times.
    let mut times = vec![0i64; g.num_nodes()];
    for (ci, cnode) in cond.nodes.iter().enumerate() {
        for &(n, off) in &cnode.members {
            times[n.index()] = ctimes[ci] + off;
        }
    }
    let limiting = if resource_delayed {
        LimitingConstraint::Resources
    } else {
        LimitingConstraint::Recurrence
    };
    Ok((Schedule::new(times, s), limiting))
}

/// Schedules one strongly connected component at interval `s`, following
/// §2.2.2: nodes in a topological order of the intra-iteration edges, each
/// placed at the earliest resource-feasible slot within its
/// precedence-constrained range. Returns normalized `(node, offset)`
/// pairs plus whether any member was pushed past its precedence-earliest
/// slot, or the abort cause if some node has no feasible slot. `ci` is
/// the component's index in the nontrivial-component list (telemetry
/// only).
fn schedule_component(
    g: &DepGraph,
    mach: &MachineDescription,
    cl: &SccClosure,
    s: u32,
    ci: usize,
    tuning: &SchedTuning,
    scratch: &mut SchedScratch,
) -> Result<(Vec<(NodeId, i64)>, bool), AttemptFailure> {
    let members = &cl.members;
    // Feasibility of every self cycle at this interval.
    for &m in members {
        if let Some(w) = cl.dist(m, m).eval(s) {
            if w > 0 {
                return Err(AttemptFailure::SelfCycleInfeasible { comp: ci });
            }
        }
    }
    // Witness mode: the hint's times satisfy every pairwise constraint of
    // the component at this interval (the witness schedule validated), so
    // adopt them directly as internal offsets. Resource feasibility of
    // the aggregate is re-checked by the condensation scheduler and the
    // post-hoc validator.
    if let Some(hint) = &tuning.rows_hint {
        let mut placed: Vec<(NodeId, i64)> =
            members.iter().map(|&n| (n, hint[n.index()])).collect();
        let min = placed.iter().map(|&(_, t)| t).min().unwrap_or(0);
        for p in &mut placed {
            p.1 -= min;
        }
        return Ok((placed, false));
    }
    scratch.note_table();
    // Split borrow: the topo workspace holds the order while the table
    // fills.
    let SchedScratch { mrt, topo, .. } = scratch;
    let order = intra_topo_order(g, members, topo);
    let table = mrt;
    table.reset(mach, s);
    let mut placed: Vec<(NodeId, i64)> = Vec::with_capacity(members.len());
    let mut delayed = false;

    for &u in order {
        let (mut lo, mut hi) = (i64::MIN, i64::MAX);
        for &(w, tw) in &placed {
            if let Some(d) = cl.dist(w, u).eval(s) {
                lo = lo.max(tw + d);
            }
            if let Some(d) = cl.dist(u, w).eval(s) {
                hi = hi.min(tw - d);
            }
        }
        if lo == i64::MIN {
            lo = 0;
        }
        if lo > hi {
            return Err(AttemptFailure::ComponentPlacement { comp: ci, node: u.0 });
        }
        // Nodes whose only lower bounds arrive through loop-carried paths
        // get ranges reaching far below zero; placing them there piles
        // conflicting work onto the early modulo rows and squeezes their
        // intra-iteration successors. Absolute position is meaningless
        // (schedules are normalized), so prefer starting at cycle 0 when
        // the range allows it.
        let lo = if hi >= 0 { lo.max(0) } else { lo };
        let scan_end = hi.min(lo + s as i64 - 1);
        let width = scan_end - lo + 1;
        let rot = tuning.slot_rotation as i64 % width.max(1);
        let mut slot = None;
        let node = g.node(u);
        // The scan covers exactly [lo, scan_end]; a nonzero rotation
        // starts elsewhere in the window (perturbation only — never
        // changes which windows are considered).
        for k in 0..width {
            let t = lo + (k + rot) % width;
            let wrap_ok = !node.needs_no_wrap()
                || t.rem_euclid(s as i64) + node.len as i64 <= s as i64;
            if wrap_ok && table.fits(&node.reservation, t) {
                slot = Some(t);
                break;
            }
        }
        let Some(t) = slot else {
            return Err(AttemptFailure::ComponentPlacement { comp: ci, node: u.0 });
        };
        if t > lo {
            delayed = true;
        }
        table.place(&g.node(u).reservation, t);
        placed.push((u, t));
    }
    let min = placed.iter().map(|&(_, t)| t).min().unwrap_or(0);
    for p in &mut placed {
        p.1 -= min;
    }
    Ok((placed, delayed))
}

/// Topological order of `members` considering only intra-iteration
/// (omega = 0) edges, which are acyclic by construction; ties broken by
/// program order (smallest ready node id first, as before — the order is
/// part of the deterministic output).
///
/// Indegrees live in a flat `Vec` indexed by the node's position in the
/// sorted `members` slice; the ready list is kept sorted descending so
/// the smallest id pops from the back without shifting.
fn intra_topo_order<'a>(
    g: &DepGraph,
    members: &[NodeId],
    topo: &'a mut TopoScratch,
) -> &'a [NodeId] {
    let k = members.len();
    let local = |n: NodeId| members.binary_search(&n);
    topo.indeg.clear();
    topo.indeg.resize(k, 0);
    for &m in members {
        for e in g.succ_edges(m) {
            if e.omega == 0 && e.to != m {
                if let Ok(j) = local(e.to) {
                    topo.indeg[j] += 1;
                }
            }
        }
    }
    topo.ready.clear();
    for j in (0..k).rev() {
        if topo.indeg[j] == 0 {
            topo.ready.push(members[j]);
        }
    }
    topo.order.clear();
    while let Some(n) = topo.ready.pop() {
        topo.order.push(n);
        for e in g.succ_edges(n) {
            if e.omega == 0 && e.to != n {
                if let Ok(j) = local(e.to) {
                    topo.indeg[j] -= 1;
                    if topo.indeg[j] == 0 {
                        let pos = topo.ready.partition_point(|&x| x > e.to);
                        topo.ready.insert(pos, e.to);
                    }
                }
            }
        }
    }
    debug_assert_eq!(topo.order.len(), members.len(), "omega=0 edges must be acyclic");
    &topo.order
}

/// A vertex of the condensation.
struct CondNode {
    /// Members with their internal offsets.
    members: Vec<(NodeId, i64)>,
    /// Aggregate resource usage at those offsets.
    reservation: ReservationTable,
    /// Occupied span.
    len: u32,
    /// No-wrap constraints from reduced-construct members: each
    /// `(offset, len)` requires `((t + offset) mod s) + len <= s`.
    no_wrap: Vec<(i64, u32)>,
}

struct Condensation {
    nodes: Vec<CondNode>,
    /// Edges `(from, to, delay, omega)` between condensation vertices,
    /// with delays adjusted by the members' internal offsets.
    edges: Vec<(usize, usize, i64, u32)>,
}

fn condense(
    g: &DepGraph,
    scc: &SccDecomposition,
    comp_offsets: &[Option<Vec<(NodeId, i64)>>],
) -> Condensation {
    let mut nodes = Vec::with_capacity(scc.len());
    let mut offset_of = vec![0i64; g.num_nodes()];
    for (c, offsets) in comp_offsets.iter().enumerate() {
        let members: Vec<(NodeId, i64)> = match offsets {
            Some(offs) => offs.clone(),
            None => vec![(scc.members[c][0], 0)],
        };
        let mut reservation = ReservationTable::empty();
        let mut len = 1u32;
        let mut no_wrap = Vec::new();
        for &(n, off) in &members {
            offset_of[n.index()] = off;
            reservation.add_shifted_sum(&g.node(n).reservation, off as usize);
            len = len.max(off as u32 + g.node(n).len);
            if g.node(n).needs_no_wrap() {
                no_wrap.push((off, g.node(n).len));
            }
        }
        nodes.push(CondNode {
            members,
            reservation,
            len,
            no_wrap,
        });
    }
    let mut edges = Vec::new();
    for e in g.edges() {
        let cf = scc.component_of(e.from);
        let ct = scc.component_of(e.to);
        if cf == ct {
            continue; // satisfied internally
        }
        let delay = e.delay + offset_of[e.from.index()] - offset_of[e.to.index()];
        edges.push((cf, ct, delay, e.omega));
    }
    Condensation { nodes, edges }
}

/// List-schedules the condensation at interval `s`. This is the acyclic
/// algorithm of §2.2.1: nodes in topological order (highest priority among
/// ready nodes first), each placed at the earliest slot satisfying its
/// predecessors; a node that fails `s` consecutive slots on resources can
/// never be placed, so the attempt aborts.
fn list_schedule_condensation<'a>(
    cond: &Condensation,
    mach: &MachineDescription,
    s: u32,
    priority: Priority,
    tuning: &SchedTuning,
    scratch: &'a mut SchedScratch,
) -> Result<(&'a [i64], bool), AttemptFailure> {
    let n = cond.nodes.len();
    // Witness mode: each vertex's preferred absolute time, derived from
    // the hint (`hint[member] - internal offset` is the same for every
    // member of a vertex whose offsets came from the hint). Placing every
    // vertex at a slot congruent to its preference reproduces the
    // witness's modulo rows, so the witness's resource feasibility
    // transfers and the scan below provably lands at `t <= preference`.
    let prefer: Option<Vec<i64>> = tuning.rows_hint.as_ref().map(|hint| {
        cond.nodes
            .iter()
            .map(|c| {
                let (m0, off0) = c.members[0];
                hint[m0.index()] - off0
            })
            .collect()
    });
    scratch.note_table();
    let SchedScratch { mrt, cond: cs, .. } = scratch;

    // CSR successor view of the condensation edges, built by stable
    // counting sort into the reusable scratch (edge order preserved —
    // `earliest` updates are max-folds, but determinism is cheap to keep).
    cs.succ_off.clear();
    cs.succ_off.resize(n + 1, 0);
    for &(f, _, _, _) in &cond.edges {
        cs.succ_off[f + 1] += 1;
    }
    for u in 0..n {
        cs.succ_off[u + 1] += cs.succ_off[u];
    }
    cs.succ.clear();
    cs.succ.resize(cond.edges.len(), (0, 0, 0));
    cs.cursor.clear();
    cs.cursor.extend_from_slice(&cs.succ_off[..n]);
    cs.indeg.clear();
    cs.indeg.resize(n, 0);
    for &(f, t, d, o) in &cond.edges {
        let i = cs.cursor[f] as usize;
        cs.cursor[f] += 1;
        cs.succ[i] = (t as u32, d, o);
        cs.indeg[t] += 1;
    }
    // Height priority: longest path to any sink, using interval-adjusted
    // delays (negative contributions clamp at zero — a weaker successor
    // chain should not *reduce* urgency below the node's own length).
    compute_heights(cond, &cs.succ_off, &cs.succ, s, &mut cs.heights);

    cs.ready.clear();
    cs.ready.extend((0..n).filter(|&i| cs.indeg[i] == 0));
    let table = mrt;
    table.reset(mach, s);
    cs.times.clear();
    cs.times.resize(n, 0);
    cs.earliest.clear();
    cs.earliest.resize(n, 0);
    let mut remaining = n;
    let mut delayed = false;
    let fav = tuning.favor_component;

    while remaining > 0 {
        // Pick the ready node to schedule next. The favored vertex (the
        // critical SCC, when set) preempts the priority; the seeded tie
        // hash replaces the default smallest-index tie-break. With the
        // default tuning both reduce to the original orders.
        let pick = match priority {
            Priority::Height => cs
                .ready
                .iter()
                .enumerate()
                .max_by_key(|&(_, &i)| {
                    let tie = match tuning.tie_seed {
                        Some(seed) => tie_hash(seed, i),
                        None => u64::MAX - i as u64,
                    };
                    (Some(i) == fav, cs.heights[i], tie, std::cmp::Reverse(i))
                })
                .map(|(k, _)| k),
            Priority::SourceOrder => cs
                .ready
                .iter()
                .enumerate()
                .min_by_key(|&(_, &i)| (Some(i) != fav, i))
                .map(|(k, _)| k),
        };
        let Some(pick) = pick else {
            // The condensation is acyclic, so the ready list can only
            // drain with vertices outstanding if the graph is malformed.
            return Err(AttemptFailure::NoReadyVertex);
        };
        let u = cs.ready.swap_remove(pick);
        let start = cs.earliest[u].max(0);
        let fits_at = |table: &ModuloTable, t: i64| {
            let wrap_ok = cond.nodes[u].no_wrap.iter().all(|&(off, len)| {
                (t + off).rem_euclid(s as i64) + len as i64 <= s as i64
            });
            wrap_ok && table.fits(&cond.nodes[u].reservation, t)
        };
        let mut placed_at = None;
        // Witness-congruent slot first: the unique t in [start, start+s)
        // on the witness's modulo row.
        if let Some(prefer) = &prefer {
            let t = start + (prefer[u] - start).rem_euclid(s as i64);
            if fits_at(table, t) {
                placed_at = Some(t);
            }
        }
        if placed_at.is_none() {
            let rot = tuning.slot_rotation as i64 % (s as i64);
            for k in 0..s as i64 {
                let t = start + (k + rot) % s as i64;
                if fits_at(table, t) {
                    placed_at = Some(t);
                    break;
                }
            }
        }
        let Some(t) = placed_at else {
            return Err(AttemptFailure::CondensationPlacement { vertex: u });
        };
        if t > start {
            delayed = true;
        }
        table.place(&cond.nodes[u].reservation, t);
        cs.times[u] = t;
        remaining -= 1;
        for i in cs.succ_off[u] as usize..cs.succ_off[u + 1] as usize {
            let (v, d, o) = cs.succ[i];
            let v = v as usize;
            cs.earliest[v] = cs.earliest[v].max(t + d - (s as i64) * (o as i64));
            cs.indeg[v] -= 1;
            if cs.indeg[v] == 0 {
                cs.ready.push(v);
            }
        }
    }
    Ok((&cs.times, delayed))
}

fn compute_heights(
    cond: &Condensation,
    succ_off: &[u32],
    succ: &[(u32, i64, u32)],
    s: u32,
    h: &mut Vec<i64>,
) {
    // The condensation is acyclic; process in reverse topological order by
    // simple iteration to fixpoint (bounded by the DAG depth).
    let n = cond.nodes.len();
    h.clear();
    h.extend(cond.nodes.iter().map(|c| c.len as i64));
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds <= n {
        changed = false;
        rounds += 1;
        for u in 0..n {
            for &(v, d, o) in &succ[succ_off[u] as usize..succ_off[u + 1] as usize] {
                let v = v as usize;
                let cand = cond.nodes[u].len as i64 + (d - (s as i64) * (o as i64)).max(0) + h[v]
                    - cond.nodes[v].len as i64;
                let cand = cand.max(cond.nodes[u].len as i64);
                if cand > h[u] {
                    h[u] = cand;
                    changed = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use ir::{Op, Opcode, RegTable, Type};
    use machine::presets::{test_machine, toy_vector};

    /// The paper's §2 example: read, add constant, write. On the toy
    /// machine this pipelines at ii = 1.
    fn vector_add_body() -> (Vec<Op>, RegTable) {
        let mut regs = RegTable::new();
        let i = regs.alloc(Type::I32);
        let addr = regs.alloc(Type::I32);
        let x = regs.alloc(Type::F32);
        let y = regs.alloc(Type::F32);
        let ops = vec![
            Op::new(Opcode::Add, Some(addr), vec![i.into(), ir::Imm::I(0).into()]),
            Op::new(Opcode::Load, Some(x), vec![addr.into()])
                .with_mem(ir::MemRef::affine(ir::ArrayId(0), 1, 0)),
            Op::new(Opcode::FAdd, Some(y), vec![x.into(), ir::Imm::F(1.0).into()]),
            Op::new(Opcode::Store, None, vec![addr.into(), y.into()])
                .with_mem(ir::MemRef::affine(ir::ArrayId(0), 1, 0)),
            Op::new(Opcode::Add, Some(i), vec![i.into(), ir::Imm::I(1).into()]),
        ];
        (ops, regs)
    }

    #[test]
    fn vector_add_achieves_ii_one() {
        let m = toy_vector();
        let (ops, _) = vector_add_body();
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        assert_eq!(r.schedule.ii(), 1, "{}", r.schedule);
        assert!(r.is_optimal());
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn accumulator_limited_by_recurrence() {
        // s = s + a[i]: RecMII = fadd latency (2 on the test machine).
        let m = test_machine();
        let mut regs = RegTable::new();
        let i = regs.alloc(Type::I32);
        let acc = regs.alloc(Type::F32);
        let addr = regs.alloc(Type::I32);
        let x = regs.alloc(Type::F32);
        let ops = vec![
            Op::new(Opcode::Add, Some(addr), vec![i.into(), ir::Imm::I(0).into()]),
            Op::new(Opcode::Load, Some(x), vec![addr.into()])
                .with_mem(ir::MemRef::affine(ir::ArrayId(0), 1, 0)),
            Op::new(Opcode::FAdd, Some(acc), vec![acc.into(), x.into()]),
            Op::new(Opcode::Add, Some(i), vec![i.into(), ir::Imm::I(1).into()]),
        ];
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        assert_eq!(r.mii.rec_mii, 2);
        assert_eq!(r.schedule.ii(), 2);
    }

    #[test]
    fn resource_bound_dominates_with_many_loads() {
        // Three loads, one memory port: ResMII = 3.
        let m = test_machine();
        let mut regs = RegTable::new();
        let a = regs.alloc(Type::I32);
        let xs: Vec<_> = (0..3).map(|_| regs.alloc(Type::F32)).collect();
        let ops: Vec<Op> = xs
            .iter()
            .enumerate()
            .map(|(k, &x)| {
                Op::new(Opcode::Load, Some(x), vec![a.into()])
                    .with_mem(ir::MemRef::affine(ir::ArrayId(k as u32), 1, 0))
            })
            .collect();
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        assert_eq!(r.mii.res_mii, 3);
        assert_eq!(r.schedule.ii(), 3);
    }

    #[test]
    fn cross_iteration_memory_recurrence() {
        // a[i] = a[i-1] * b[i]: load of a[i-1] depends on last iteration's
        // store; the cycle is load -> mul -> store -> (omega 1) load.
        let m = test_machine();
        let mut regs = RegTable::new();
        let ai = regs.alloc(Type::I32);
        let prev = regs.alloc(Type::F32);
        let b = regs.alloc(Type::F32);
        let prod = regs.alloc(Type::F32);
        let arr = ir::ArrayId(0);
        let ops = vec![
            Op::new(Opcode::Load, Some(prev), vec![ai.into()])
                .with_mem(ir::MemRef::affine(arr, 1, -1)),
            Op::new(Opcode::FMul, Some(prod), vec![prev.into(), b.into()]),
            Op::new(Opcode::Store, None, vec![ai.into(), prod.into()])
                .with_mem(ir::MemRef::affine(arr, 1, 0)),
        ];
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        // Cycle: load(lat 2) -> mul(lat 3) -> store, store ->(d=1, omega=1)
        // load: d = 2 + 3 + 1 = 6 over omega 1.
        assert_eq!(r.mii.rec_mii, 6);
        assert_eq!(r.schedule.ii(), 6);
    }

    #[test]
    fn empty_graph_trivial_schedule() {
        let m = test_machine();
        let g = DepGraph::new();
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        assert_eq!(r.schedule.ii(), 1);
    }

    #[test]
    fn binary_search_also_finds_schedules() {
        let m = test_machine();
        let (ops, _) = vector_add_body();
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(
            &g,
            &m,
            &SchedOptions {
                search: IiSearch::Binary,
                ..Default::default()
            },
        )
        .unwrap();
        r.schedule.validate(&g, &m).unwrap();
    }

    #[test]
    fn source_order_priority_still_valid() {
        let m = test_machine();
        let (ops, _) = vector_add_body();
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(
            &g,
            &m,
            &SchedOptions {
                priority: Priority::SourceOrder,
                ..Default::default()
            },
        )
        .unwrap();
        r.schedule.validate(&g, &m).unwrap();
    }

    #[test]
    fn schedules_are_validated() {
        // Stress: a body mixing recurrences, memory and many ops. Whatever
        // interval is found, the schedule must validate.
        let m = test_machine();
        let mut regs = RegTable::new();
        let i = regs.alloc(Type::I32);
        let acc = regs.alloc(Type::F32);
        let mut ops = vec![];
        let addr = regs.alloc(Type::I32);
        ops.push(Op::new(
            Opcode::Add,
            Some(addr),
            vec![i.into(), ir::Imm::I(0).into()],
        ));
        let mut cur = acc;
        for k in 0..6 {
            let x = regs.alloc(Type::F32);
            ops.push(
                Op::new(Opcode::Load, Some(x), vec![addr.into()])
                    .with_mem(ir::MemRef::affine(ir::ArrayId(k), 1, 0)),
            );
            let nxt = regs.alloc(Type::F32);
            ops.push(Op::new(Opcode::FMul, Some(nxt), vec![cur.into(), x.into()]));
            cur = nxt;
        }
        ops.push(Op::new(Opcode::FAdd, Some(acc), vec![acc.into(), cur.into()]));
        ops.push(Op::new(
            Opcode::Add,
            Some(i),
            vec![i.into(), ir::Imm::I(1).into()],
        ));
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        r.schedule.validate(&g, &m).unwrap();
        assert!(r.schedule.ii() >= r.mii.mii());
    }

    /// A single reduced construct of length `len` with no resource
    /// footprint: schedulable only at `s >= len` (the no-wrap rule), while
    /// both MII bounds stay at 1.
    fn long_cond_graph(len: u32) -> DepGraph {
        use crate::graph::{Node, NodeKind, ReducedCond};
        let mut g = DepGraph::new();
        g.add_node(Node {
            kind: NodeKind::Cond(Box::new(ReducedCond {
                cond: ir::VReg(0),
                then_items: Vec::new(),
                else_items: Vec::new(),
                len,
            })),
            reservation: ReservationTable::empty(),
            len,
        });
        g
    }

    /// Regression: the old default cap clamped the linear search at
    /// `mii + 1024`, below the only feasible interval for a body whose
    /// reduced construct is longer than that — the scheduler reported
    /// `NoSchedule` for a schedulable loop. The derived cap must now reach
    /// the serialized body length.
    #[test]
    fn default_cap_reaches_long_construct_interval() {
        let m = test_machine();
        let g = long_cond_graph(1100);
        // With the old cap (mii=1 + 1024) the search stops short.
        let capped = modulo_schedule(
            &g,
            &m,
            &SchedOptions {
                max_ii: Some(1025),
                ..Default::default()
            },
        );
        assert!(
            matches!(capped, Err(SchedError::NoSchedule { mii: 1, max_ii: 1025 })),
            "{capped:?}"
        );
        // The derived default cap must clear 1100.
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        assert_eq!(r.schedule.ii(), 1100, "no-wrap needs s >= construct len");
        assert_eq!(r.mii.mii(), 1);
        assert_eq!(r.attempts, 1100, "linear search from 1");
    }

    /// The telemetry log records every attempted interval and its abort
    /// cause, and the SCC structure of the graph.
    #[test]
    fn telemetry_records_attempts_and_sccs() {
        let m = test_machine();
        let g = long_cond_graph(5);
        let (r, tel) = modulo_schedule_telemetry(&g, &m, &SchedOptions::default());
        let r = r.unwrap();
        assert_eq!(r.schedule.ii(), 5);
        assert_eq!(tel.scc_count, 1, "one trivial component");
        assert!(tel.scc_sizes.is_empty(), "no nontrivial components");
        assert_eq!(tel.attempts.len(), 5);
        for a in &tel.attempts[..4] {
            assert!(
                matches!(
                    a.failure,
                    Some(crate::stats::AttemptFailure::CondensationPlacement { vertex: 0 })
                ),
                "{a:?}"
            );
        }
        assert_eq!(tel.attempts[4].ii, 5);
        assert!(tel.attempts[4].failure.is_none());
        assert_eq!(tel.abort_summary(), "condensation:4");
        assert_eq!(tel.attempt_range(), "1-5");
    }

    /// Regression (refine groundwork): the *successful* attempt's record
    /// names the limiting constraint. A loop whose placements are pushed
    /// by the reservation table reports `Resources`.
    #[test]
    fn successful_attempt_records_resource_limit() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let a = regs.alloc(Type::I32);
        let xs: Vec<_> = (0..3).map(|_| regs.alloc(Type::F32)).collect();
        let ops: Vec<Op> = xs
            .iter()
            .enumerate()
            .map(|(k, &x)| {
                Op::new(Opcode::Load, Some(x), vec![a.into()])
                    .with_mem(ir::MemRef::affine(ir::ArrayId(k as u32), 1, 0))
            })
            .collect();
        let g = build_graph(&ops, &m, BuildOptions::default());
        let (r, tel) = modulo_schedule_telemetry(&g, &m, &SchedOptions::default());
        assert_eq!(r.unwrap().schedule.ii(), 3, "one memory port, three loads");
        let ok = tel
            .attempts
            .iter()
            .find(|a| a.failure.is_none())
            .expect("a successful attempt");
        assert_eq!(
            ok.limiting,
            Some(crate::stats::LimitingConstraint::Resources),
            "loads serialize on the memory port"
        );
        for failed in tel.attempts.iter().filter(|a| a.failure.is_some()) {
            assert_eq!(failed.limiting, None, "failures carry no limit: {failed:?}");
        }
    }

    /// Regression counterpart: a recurrence-bound loop whose every node
    /// lands at its precedence-earliest slot reports `Recurrence`.
    #[test]
    fn successful_attempt_records_recurrence_limit() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let s = regs.alloc(Type::F32);
        let x = regs.alloc(Type::F32);
        let op = Op::new(Opcode::FAdd, Some(s), vec![s.into(), x.into()]);
        let g = build_graph(&[op], &m, BuildOptions::default());
        let (r, tel) = modulo_schedule_telemetry(&g, &m, &SchedOptions::default());
        assert_eq!(r.unwrap().schedule.ii(), 2, "bound by the fadd recurrence");
        let ok = tel.attempts.iter().find(|a| a.failure.is_none()).unwrap();
        assert_eq!(
            ok.limiting,
            Some(crate::stats::LimitingConstraint::Recurrence)
        );
    }

    /// Recurrence-bound loop: the telemetry's component sizes reflect the
    /// nontrivial SCC and the first attempt succeeds at the bound.
    #[test]
    fn telemetry_scc_sizes_for_recurrence() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let s = regs.alloc(Type::F32);
        let x = regs.alloc(Type::F32);
        let op = Op::new(Opcode::FAdd, Some(s), vec![s.into(), x.into()]);
        let g = build_graph(&[op], &m, BuildOptions::default());
        let (r, tel) = modulo_schedule_telemetry(&g, &m, &SchedOptions::default());
        assert_eq!(r.unwrap().schedule.ii(), 2);
        assert_eq!(tel.scc_sizes, vec![1], "one self-cycle component");
        assert_eq!(tel.attempts.len(), 1);
    }
}
