//! Detection and removal of transitively-dominated dependence edges.
//!
//! Every edge `e = (u, v, d, ω)` contributes the scheduling constraint
//! `σ(v) − σ(u) ≥ d − s·ω` (§2.1). If some *other* path `P` from `u` to
//! `v` has `d(P) ≥ d` and `ω(P) ≤ ω`, then `P`'s (path-composed)
//! constraint implies `e`'s for every interval `s ≥ 0`, and `e` can be
//! deleted without enlarging the set of legal schedules. Conservative
//! memory edges and the all-pairs queue/output chains emitted by the
//! graph builder produce many such edges; removing them shrinks the
//! closure working set and never raises the achieved interval.
//!
//! ## Why simultaneous removal is sound
//!
//! We remove an edge only when it is **strictly** dominated: a witness
//! path with `d(P) > d` (and `ω(P) ≤ ω`), or `ω(P) < ω` (and
//! `d(P) ≥ d`), or an exact duplicate of an earlier edge. The subtlety is
//! that a witness path may itself traverse edges that are being removed.
//! Suppose the "witness-of" relation had a cycle `e₁ → e₂ → … → e₁`
//! (each `eᵢ`'s witness uses `eᵢ₊₁`). For every `s ≥ 1` a strict witness
//! is stronger by at least 1 in `d − s·ω`; summing the `k` inequalities
//! and cancelling the `eᵢ` terms leaves two closed walks whose combined
//! `d − s·ω` is `≥ k > 0` for **all** `s ≥ 1` — which forces a
//! positive-delay walk with `ω = 0`, i.e. an unschedulable graph. Hence
//! on graphs that pass the zero-omega positive-cycle pre-check (the same
//! legality condition [`crate::pathalg`] enforces), the witness relation
//! is acyclic and all strictly-dominated edges may be removed at once:
//! induction over the relation rebuilds every removed constraint from
//! kept edges. The pre-check failing means no pruning happens at all —
//! the scheduler will reject the graph anyway.
//!
//! A second consequence of the same legality condition: any path that
//! reaches `v` *through* `e` while keeping `ω ≤ ω(e)` must wrap its
//! detours into zero-omega closed walks of non-positive delay, so it can
//! never score `d > d(e)` or `ω < ω(e)`. Strict domination therefore
//! never mistakes "the edge plus a detour" for an independent witness,
//! and one Pareto longest-path sweep per source node — *including* the
//! candidate edge — decides every out-edge of that source.
//!
//! Self edges get one extra (sound) rule for free: the empty path at `u`
//! scores `(0, 0)`, so a self edge whose constraint `0 ≥ d − s·ω` holds
//! vacuously for every `s ≥ 1` (e.g. the carried output edge a variable's
//! single def pushes onto itself) is detected as dominated by `(0, 0)`.

use crate::graph::{DepGraph, NodeId};
use crate::pathalg::DistSet;

/// Result of [`dominated_edges`].
#[derive(Debug, Clone)]
pub struct PruneAnalysis {
    /// `dominated[i]` is true if edge `i` (by position in
    /// [`DepGraph::edges`]) is provably redundant.
    pub dominated: Vec<bool>,
    /// False if the graph has a positive-delay zero-omega cycle (it
    /// cannot be scheduled at any interval); no edges are marked then.
    pub legal: bool,
}

impl PruneAnalysis {
    /// Number of edges marked dominated.
    pub fn num_dominated(&self) -> usize {
        self.dominated.iter().filter(|&&d| d).count()
    }

    /// Iterates the dominated edge indices.
    pub fn dominated_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.dominated
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| if d { Some(i) } else { None })
    }
}

/// Bellman–Ford on the zero-omega subgraph: true if some zero-omega cycle
/// has positive total delay (the graph is unschedulable at any interval).
fn has_positive_zero_omega_cycle(g: &DepGraph) -> bool {
    let n = g.num_nodes();
    if n == 0 {
        return false;
    }
    // Longest-path relaxation from an implicit super-source (all zeros);
    // a positive cycle keeps improving past n rounds.
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in g.edges() {
            if e.omega != 0 {
                continue;
            }
            let cand = dist[e.from.index()].saturating_add(e.delay);
            if cand > dist[e.to.index()] {
                dist[e.to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    true
}

/// Marks every dependence edge that is provably implied by the rest of
/// the graph (see the module docs for the exact rules and why removing
/// them together is sound). Detection only — use [`prune_dominated`] to
/// also delete them.
pub fn dominated_edges(g: &DepGraph) -> PruneAnalysis {
    let ne = g.edges().len();
    let mut dominated = vec![false; ne];
    if has_positive_zero_omega_cycle(g) {
        return PruneAnalysis {
            dominated,
            legal: false,
        };
    }

    // Rule 1: exact duplicates — keep the first occurrence.
    let mut seen = std::collections::BTreeSet::new();
    for (i, e) in g.edges().iter().enumerate() {
        if !seen.insert((e.from, e.to, e.delay, e.omega)) {
            dominated[i] = true;
        }
    }

    // Rule 2: strict domination by a Pareto-longest path, one sweep per
    // source node. The omega budget per source is the largest omega among
    // its out-edges — entries beyond it can never witness a domination.
    let n = g.num_nodes();
    let mut dist: Vec<DistSet> = vec![DistSet::empty(); n];
    for u in 0..n {
        let out = g.succ_edge_ids(NodeId(u as u32));
        if out.is_empty() {
            continue;
        }
        let cap = out
            .iter()
            .map(|&eid| g.edges()[eid as usize].omega)
            .max()
            .expect("out is non-empty");

        for d in dist.iter_mut() {
            *d = DistSet::empty();
        }
        dist[u] = DistSet::single(0, 0);

        // Label-correcting rounds. Convergence: zero-omega cycles cannot
        // improve (their delay is ≤ 0 by the pre-check), and cycles with
        // omega ≥ 1 exhaust the `cap` budget. The round limit is a
        // belt-and-braces guard; hitting it abandons pruning for this
        // source only.
        let max_rounds = 2 * n * (cap as usize + 1) + 2;
        let mut converged = false;
        for _ in 0..max_rounds {
            let mut changed = false;
            for e in g.edges() {
                let (a, b) = (e.from.index(), e.to.index());
                if dist[a].is_empty() {
                    continue;
                }
                // `split_at_mut`-free: collect candidate entries first
                // (sets are tiny — a handful of Pareto points).
                let cands: Vec<(i64, u32)> = dist[a]
                    .entries()
                    .iter()
                    .filter_map(|&(d, o)| {
                        let no = o + e.omega;
                        if no <= cap {
                            Some((d + e.delay, no))
                        } else {
                            None
                        }
                    })
                    .collect();
                for (d, o) in cands {
                    if dist[b].insert(d, o) {
                        changed = true;
                    }
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        if !converged {
            continue;
        }

        for &eid in out {
            let eid = eid as usize;
            if dominated[eid] {
                continue;
            }
            let e = &g.edges()[eid];
            let strict = dist[e.to.index()].entries().iter().any(|&(d, o)| {
                (o < e.omega && d >= e.delay) || (o <= e.omega && d > e.delay)
            });
            if strict {
                dominated[eid] = true;
            }
        }
    }

    PruneAnalysis {
        dominated,
        legal: true,
    }
}

/// Removes every dominated edge from the graph, returning how many were
/// deleted. Node ids, node order, the surviving edges' relative order and
/// [`DepGraph::expandable`] are all preserved, so downstream tie-breaks
/// stay deterministic.
pub fn prune_dominated(g: &mut DepGraph) -> usize {
    let analysis = dominated_edges(g);
    if !analysis.legal || analysis.num_dominated() == 0 {
        return 0;
    }
    g.retain_edges(|i, _| !analysis.dominated[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepEdge, DepKind, Node};
    use ir::{Imm, Op, Opcode, VReg};
    use machine::ReservationTable;

    fn graph_with(n: usize, edges: &[(u32, u32, u32, i64)]) -> DepGraph {
        let mut g = DepGraph::new();
        for _ in 0..n {
            g.add_node(Node::op(
                Op::new(Opcode::Const, Some(VReg(0)), vec![Imm::I(0).into()]),
                ReservationTable::empty(),
            ));
        }
        for &(from, to, omega, delay) in edges {
            g.add_edge(DepEdge::new(NodeId(from), NodeId(to), omega, delay, DepKind::True));
        }
        g
    }

    #[test]
    fn transitive_chain_dominates_direct_edge() {
        // 0 -> 1 -> 2 with delays 2 and 3; direct 0 -> 2 with delay 4 is
        // dominated (path scores 5 > 4 at equal omega).
        let mut g = graph_with(3, &[(0, 1, 0, 2), (1, 2, 0, 3), (0, 2, 0, 4)]);
        let a = dominated_edges(&g);
        assert!(a.legal);
        assert_eq!(a.dominated, vec![false, false, true]);
        assert_eq!(prune_dominated(&mut g), 1);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn equal_weight_path_does_not_dominate() {
        // Path scores exactly (4, 0): non-strict, must keep the edge
        // (the witness could be the edge itself plus zero-weight walks).
        let g = graph_with(3, &[(0, 1, 0, 2), (1, 2, 0, 2), (0, 2, 0, 4)]);
        let a = dominated_edges(&g);
        assert_eq!(a.num_dominated(), 0);
    }

    #[test]
    fn lower_omega_path_dominates_carried_edge() {
        // Direct carried edge (omega 1, delay 1) vs an intra-iteration
        // path (omega 0, delay 1): strictly stronger.
        let g = graph_with(2, &[(0, 1, 0, 1), (0, 1, 1, 1)]);
        let a = dominated_edges(&g);
        assert_eq!(a.dominated, vec![false, true]);
    }

    #[test]
    fn duplicate_edges_keep_first() {
        let g = graph_with(2, &[(0, 1, 0, 3), (0, 1, 0, 3), (0, 1, 0, 3)]);
        let a = dominated_edges(&g);
        assert_eq!(a.dominated, vec![false, true, true]);
    }

    #[test]
    fn vacuous_self_edge_is_dominated() {
        // 0 >= d - s*omega holds for every s >= 1 when d <= omega:
        // the carried output self edge (omega 1, delay 1) is NOT vacuous
        // (s = 1 gives 0 >= 0, binding RecMII to 1, which every schedule
        // satisfies)... but (omega 1, delay 0) is implied by the empty
        // path at any s >= 0.
        let g = graph_with(1, &[(0, 0, 1, 0)]);
        let a = dominated_edges(&g);
        assert_eq!(a.dominated, vec![true]);
        // A genuine recurrence self edge must survive.
        let g = graph_with(1, &[(0, 0, 1, 2)]);
        assert_eq!(dominated_edges(&g).num_dominated(), 0);
    }

    #[test]
    fn recurrence_cycle_edges_survive() {
        // 0 -> 1 (delay 2), 1 -> 0 (omega 1, delay 1): a binding cycle;
        // neither edge is implied by the other.
        let g = graph_with(2, &[(0, 1, 0, 2), (1, 0, 1, 1)]);
        assert_eq!(dominated_edges(&g).num_dominated(), 0);
    }

    #[test]
    fn illegal_graph_prunes_nothing() {
        // Positive zero-omega cycle: unschedulable; prune must refuse.
        let mut g = graph_with(2, &[(0, 1, 0, 1), (1, 0, 0, 1), (0, 1, 0, 0)]);
        let a = dominated_edges(&g);
        assert!(!a.legal);
        assert_eq!(a.num_dominated(), 0);
        assert_eq!(prune_dominated(&mut g), 0);
    }

    #[test]
    fn conservative_memory_chain_is_thinned() {
        // Three stores with unknown aliasing produce all-pairs omega-0
        // forward edges (delay 1) and omega-1 backward edges; the direct
        // 0 -> 2 edge (delay 1) is dominated by 0 -> 1 -> 2 (delay 2).
        let g = graph_with(
            3,
            &[
                (0, 1, 0, 1),
                (0, 2, 0, 1),
                (1, 2, 0, 1),
                (1, 0, 1, 1),
                (2, 0, 1, 1),
                (2, 1, 1, 1),
            ],
        );
        let a = dominated_edges(&g);
        assert!(a.legal);
        // 0->2 is dominated by the forward chain 0->1->2 (delay 2 > 1 at
        // omega 0). The backward edges 1->0 and 2->1 are dominated by
        // routing through the *surviving* backward edge 2->0: e.g.
        // 1->2 (omega 0) + 2->0 (omega 1) scores (2, 1), strictly
        // stronger than the direct 1->0 (1, 1). 2->0 itself survives —
        // every detour for it would need two carried edges.
        assert_eq!(
            a.dominated,
            vec![false, true, false, true, false, true],
            "{a:?}"
        );
    }

    #[test]
    fn pruning_preserves_recurrence_mii() {
        use crate::modsched::SchedAnalysis;
        // A cycle bound by ceil(3/1) = 3 plus a dominated parallel edge.
        let mut g = graph_with(2, &[(0, 1, 0, 2), (1, 0, 1, 1), (0, 1, 1, 1)]);
        let before = SchedAnalysis::analyze(&g);
        let rec_before = crate::mii::rec_mii(&before.closures).unwrap();
        assert!(prune_dominated(&mut g) > 0);
        let after = SchedAnalysis::analyze(&g);
        let rec_after = crate::mii::rec_mii(&after.closures).unwrap();
        assert_eq!(rec_before, rec_after);
    }
}
