//! Lower bounds on the initiation interval (§2.2).
//!
//! * **Resource bound** (`ResMII`): if an iteration initiates every `s`
//!   cycles, the total units of each resource available in `s` cycles must
//!   cover one iteration's requirement — the bound is the maximum over
//!   resources of `ceil(total use / units per cycle)`.
//! * **Recurrence bound** (`RecMII`): every dependence cycle `c` must
//!   satisfy `d(c) - s * omega(c) <= 0`, giving
//!   `s >= max over cycles of ceil(d(c) / omega(c))`.

use machine::MachineDescription;

use crate::graph::DepGraph;
use crate::pathalg::SccClosure;

/// The computed lower bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiiReport {
    /// Resource-constrained bound.
    pub res_mii: u32,
    /// Recurrence-constrained bound (0 when the graph is acyclic).
    pub rec_mii: u32,
}

impl MiiReport {
    /// The combined lower bound (never less than 1).
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii).max(1)
    }
}

/// An illegal dependence cycle: zero iteration difference with positive
/// delay (the program could never execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalCycle;

impl std::fmt::Display for IllegalCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dependence cycle with zero iteration difference and positive delay")
    }
}

impl std::error::Error for IllegalCycle {}

/// Resource-constrained lower bound: the maximum over resources of the
/// ratio between one iteration's total use and the per-cycle units.
pub fn res_mii(g: &DepGraph, mach: &MachineDescription) -> u32 {
    let mut totals = vec![0u64; mach.num_resources()];
    for node in g.nodes() {
        for row in node.reservation.rows() {
            for (rid, units) in row.iter() {
                totals[rid.index()] += units as u64;
            }
        }
    }
    let mut bound = 1u64;
    for (i, &total) in totals.iter().enumerate() {
        let per_cycle = mach.resources()[i].count as u64;
        bound = bound.max(total.div_ceil(per_cycle));
    }
    bound as u32
}

/// Recurrence-constrained lower bound from the per-component closures.
///
/// # Errors
///
/// Returns [`IllegalCycle`] if any cycle has zero iteration difference and
/// positive delay.
pub fn rec_mii(closures: &[SccClosure]) -> Result<u32, IllegalCycle> {
    let mut bound = 0i64;
    for cl in closures {
        bound = bound.max(cl.recurrence_mii().ok_or(IllegalCycle)?);
    }
    Ok(bound.max(0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::scc::tarjan;
    use ir::{Op, Opcode, RegTable, Type, VReg};
    use machine::presets::test_machine;

    fn fadd(regs: &mut RegTable, a: VReg, b: VReg) -> (Op, VReg) {
        let d = regs.alloc(Type::F32);
        (Op::new(Opcode::FAdd, Some(d), vec![a.into(), b.into()]), d)
    }

    #[test]
    fn res_mii_counts_unit_pressure() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        // Three adds, one adder: ResMII = 3.
        let (o1, a) = fadd(&mut regs, x, x);
        let (o2, b) = fadd(&mut regs, a, x);
        let (o3, _) = fadd(&mut regs, b, x);
        let g = build_graph(&[o1, o2, o3], &m, BuildOptions::default());
        assert_eq!(res_mii(&g, &m), 3);
    }

    #[test]
    fn res_mii_at_least_one() {
        let m = test_machine();
        let g = build_graph(&[], &m, BuildOptions::default());
        assert_eq!(res_mii(&g, &m), 1);
    }

    #[test]
    fn rec_mii_from_accumulator() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let s = regs.alloc(Type::F32);
        let x = regs.alloc(Type::F32);
        // s = s + x: loop-carried self dependence with fadd latency 2.
        let op = Op::new(Opcode::FAdd, Some(s), vec![s.into(), x.into()]);
        let g = build_graph(&[op], &m, BuildOptions::default());
        let scc = tarjan(&g);
        let closures: Vec<SccClosure> = (0..scc.len())
            .filter(|&c| scc.members[c].len() > 1 || {
                let n = scc.members[c][0];
                g.succ_edges(n).any(|e| e.to == n)
            })
            .map(|c| SccClosure::compute(&g, &scc, c))
            .collect();
        assert_eq!(rec_mii(&closures).unwrap(), 2);
    }

    #[test]
    fn acyclic_rec_mii_zero() {
        assert_eq!(rec_mii(&[]).unwrap(), 0);
    }

    #[test]
    fn mii_report_combines() {
        let r = MiiReport {
            res_mii: 3,
            rec_mii: 5,
        };
        assert_eq!(r.mii(), 5);
        let r = MiiReport {
            res_mii: 0,
            rec_mii: 0,
        };
        assert_eq!(r.mii(), 1);
    }
}
