//! Lower bounds on the initiation interval (§2.2).
//!
//! * **Resource bound** (`ResMII`): if an iteration initiates every `s`
//!   cycles, the total units of each resource available in `s` cycles must
//!   cover one iteration's requirement — the bound is the maximum over
//!   resources of `ceil(total use / units per cycle)`.
//! * **Recurrence bound** (`RecMII`): every dependence cycle `c` must
//!   satisfy `d(c) - s * omega(c) <= 0`, giving
//!   `s >= max over cycles of ceil(d(c) / omega(c))`.

use machine::MachineDescription;

use crate::graph::DepGraph;
use crate::pathalg::SccClosure;

/// The computed lower bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiiReport {
    /// Resource-constrained bound.
    pub res_mii: u32,
    /// Recurrence-constrained bound (0 when the graph is acyclic).
    pub rec_mii: u32,
}

impl MiiReport {
    /// The combined lower bound (never less than 1).
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii).max(1)
    }
}

/// An illegal dependence cycle: zero iteration difference with positive
/// delay (the program could never execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalCycle;

impl std::fmt::Display for IllegalCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dependence cycle with zero iteration difference and positive delay")
    }
}

impl std::error::Error for IllegalCycle {}

/// A loop body demanding units of a resource the machine has zero of: the
/// resource bound is infinite, so no initiation interval exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroCapacity {
    /// Name of the zero-capacity resource.
    pub resource: String,
}

impl std::fmt::Display for ZeroCapacity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "body uses zero-capacity resource '{}'", self.resource)
    }
}

impl std::error::Error for ZeroCapacity {}

/// Resource-constrained lower bound: the maximum over resources of the
/// ratio between one iteration's total use and the per-cycle units.
///
/// Resources declared with zero units are skipped while unused; a body
/// that actually demands one has no finite bound.
///
/// # Errors
///
/// Returns [`ZeroCapacity`] when some node's reservation uses a resource
/// the machine has zero units of (previously a `div_ceil` divide-by-zero
/// panic).
pub fn res_mii(g: &DepGraph, mach: &MachineDescription) -> Result<u32, ZeroCapacity> {
    let mut totals = vec![0u64; mach.num_resources()];
    for node in g.nodes() {
        for row in node.reservation.rows() {
            for (rid, units) in row.iter() {
                totals[rid.index()] += units as u64;
            }
        }
    }
    let mut bound = 1u64;
    for (i, &total) in totals.iter().enumerate() {
        let per_cycle = mach.resources()[i].count as u64;
        if per_cycle == 0 {
            if total > 0 {
                return Err(ZeroCapacity {
                    resource: mach.resources()[i].name.clone(),
                });
            }
            continue;
        }
        bound = bound.max(total.div_ceil(per_cycle));
    }
    Ok(bound as u32)
}

/// Recurrence-constrained lower bound from the per-component closures.
///
/// # Errors
///
/// Returns [`IllegalCycle`] if any cycle has zero iteration difference and
/// positive delay.
pub fn rec_mii(closures: &[SccClosure]) -> Result<u32, IllegalCycle> {
    let mut bound = 0i64;
    for cl in closures {
        bound = bound.max(cl.recurrence_mii().ok_or(IllegalCycle)?);
    }
    Ok(bound.max(0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, BuildOptions};
    use crate::graph::{DepEdge, DepKind, Node};
    use crate::scc::tarjan;
    use ir::{Imm, Op, Opcode, RegTable, Type, VReg};
    use machine::presets::test_machine;
    use machine::OpClass;

    fn fadd(regs: &mut RegTable, a: VReg, b: VReg) -> (Op, VReg) {
        let d = regs.alloc(Type::F32);
        (Op::new(Opcode::FAdd, Some(d), vec![a.into(), b.into()]), d)
    }

    /// A standalone node for hand-built graphs (the edges carry all the
    /// recurrence structure; operands are irrelevant to the bound).
    fn leaf(m: &MachineDescription, class: OpClass, dst: u32) -> Node {
        let opcode = match class {
            OpClass::FloatDiv => Opcode::FDiv,
            OpClass::FloatMul => Opcode::FMul,
            _ => Opcode::FAdd,
        };
        Node::op(
            Op::new(
                opcode,
                Some(VReg(dst)),
                vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
            ),
            m.reservation(class).clone(),
        )
    }

    /// Closures for every non-trivial SCC (same filter the scheduler
    /// applies: multi-node components, or single nodes with a self edge).
    fn closures_of(g: &DepGraph) -> Vec<SccClosure> {
        let scc = tarjan(g);
        (0..scc.len())
            .filter(|&c| {
                scc.members[c].len() > 1 || {
                    let n = scc.members[c][0];
                    g.succ_edges(n).any(|e| e.to == n)
                }
            })
            .map(|c| SccClosure::compute(g, &scc, c))
            .collect()
    }

    fn edge(from: crate::graph::NodeId, to: crate::graph::NodeId, delay: i64, omega: u32) -> DepEdge {
        DepEdge::new(from, to, omega, delay, DepKind::True)
    }

    #[test]
    fn res_mii_counts_unit_pressure() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        // Three adds, one adder: ResMII = 3.
        let (o1, a) = fadd(&mut regs, x, x);
        let (o2, b) = fadd(&mut regs, a, x);
        let (o3, _) = fadd(&mut regs, b, x);
        let g = build_graph(&[o1, o2, o3], &m, BuildOptions::default());
        assert_eq!(res_mii(&g, &m).unwrap(), 3);
    }

    #[test]
    fn res_mii_at_least_one() {
        let m = test_machine();
        let g = build_graph(&[], &m, BuildOptions::default());
        assert_eq!(res_mii(&g, &m).unwrap(), 1);
    }

    #[test]
    fn rec_mii_from_accumulator() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let s = regs.alloc(Type::F32);
        let x = regs.alloc(Type::F32);
        // s = s + x: loop-carried self dependence with fadd latency 2.
        let op = Op::new(Opcode::FAdd, Some(s), vec![s.into(), x.into()]);
        let g = build_graph(&[op], &m, BuildOptions::default());
        let scc = tarjan(&g);
        let closures: Vec<SccClosure> = (0..scc.len())
            .filter(|&c| scc.members[c].len() > 1 || {
                let n = scc.members[c][0];
                g.succ_edges(n).any(|e| e.to == n)
            })
            .map(|c| SccClosure::compute(&g, &scc, c))
            .collect();
        assert_eq!(rec_mii(&closures).unwrap(), 2);
    }

    #[test]
    fn acyclic_rec_mii_zero() {
        assert_eq!(rec_mii(&[]).unwrap(), 0);
    }

    /// Two-node cycle a -> b (d=3, omega=0), b -> a (d=2, omega=1): total
    /// delay 5 over one iteration of slack, so RecMII = 5 exactly.
    #[test]
    fn rec_mii_two_node_cycle() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        let b = g.add_node(leaf(&m, OpClass::FloatAdd, 1));
        g.add_edge(edge(a, b, 3, 0));
        g.add_edge(edge(b, a, 2, 1));
        assert_eq!(rec_mii(&closures_of(&g)).unwrap(), 5);
    }

    /// The bound is ceil(d/omega), not floor: delay 5 spread over two
    /// iterations gives ceil(5/2) = 3.
    #[test]
    fn rec_mii_rounds_up() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        let b = g.add_node(leaf(&m, OpClass::FloatAdd, 1));
        g.add_edge(edge(a, b, 3, 1));
        g.add_edge(edge(b, a, 2, 1));
        assert_eq!(rec_mii(&closures_of(&g)).unwrap(), 3);
    }

    /// With several independent recurrences the slowest one governs.
    #[test]
    fn rec_mii_takes_max_over_cycles() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        let b = g.add_node(leaf(&m, OpClass::FloatAdd, 1));
        g.add_edge(edge(a, a, 2, 1)); // bound 2
        g.add_edge(edge(b, b, 7, 2)); // bound ceil(7/2) = 4
        assert_eq!(rec_mii(&closures_of(&g)).unwrap(), 4);
    }

    /// Composite cycles matter too: the closure must consider the tour
    /// through both edges of the SCC, not just each edge alone.
    #[test]
    fn rec_mii_composite_cycle_dominates_self_edges() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        let b = g.add_node(leaf(&m, OpClass::FloatAdd, 1));
        // Each edge alone is harmless (omega-weighted slack is ample);
        // the combined cycle has d=10, omega=1 => bound 10.
        g.add_edge(edge(a, b, 8, 0));
        g.add_edge(edge(b, a, 2, 1));
        g.add_edge(edge(a, a, 1, 1)); // bound 1 on its own
        assert_eq!(rec_mii(&closures_of(&g)).unwrap(), 10);
    }

    /// A cycle with zero iteration difference and positive delay cannot be
    /// executed at any interval: rec_mii must report it, not loop forever.
    #[test]
    fn rec_mii_rejects_zero_omega_cycle() {
        let m = test_machine();
        let mut g = DepGraph::new();
        let a = g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        let b = g.add_node(leaf(&m, OpClass::FloatAdd, 1));
        g.add_edge(edge(a, b, 1, 0));
        g.add_edge(edge(b, a, 1, 0));
        assert_eq!(rec_mii(&closures_of(&g)), Err(IllegalCycle));
    }

    /// Multi-cycle reservations count every occupied row: each FDiv holds
    /// the single fmul unit for 3 cycles on the test machine, so two
    /// divides plus a multiply demand 7 fmul-cycles per iteration.
    #[test]
    fn res_mii_counts_multi_cycle_reservations() {
        let m = test_machine();
        let mut g = DepGraph::new();
        g.add_node(leaf(&m, OpClass::FloatDiv, 0));
        g.add_node(leaf(&m, OpClass::FloatDiv, 1));
        g.add_node(leaf(&m, OpClass::FloatMul, 2));
        assert_eq!(res_mii(&g, &m).unwrap(), 7);
    }

    /// A machine with a declared-but-absent resource (zero units). Unused,
    /// it must not affect the bound; demanded, `res_mii` must report a
    /// structured error instead of panicking in `div_ceil`.
    fn machine_with_phantom() -> (MachineDescription, machine::ResourceId) {
        let mut b = machine::MachineBuilder::new("phantom-test");
        let fadd = b.resource("fadd", 1);
        let phantom = b.resource("phantom", 0);
        b.uniform_default_timing(1);
        b.timing(
            OpClass::FloatAdd,
            2,
            machine::ReservationTable::single_cycle(fadd, 1),
        );
        (b.build().unwrap(), phantom)
    }

    #[test]
    fn unused_zero_capacity_resource_is_ignored() {
        let (m, _) = machine_with_phantom();
        let mut g = DepGraph::new();
        g.add_node(leaf(&m, OpClass::FloatAdd, 0));
        assert_eq!(res_mii(&g, &m).unwrap(), 1);
    }

    #[test]
    fn demanded_zero_capacity_resource_is_an_error_not_a_panic() {
        let (m, phantom) = machine_with_phantom();
        let mut g = DepGraph::new();
        // Hand-built node whose reservation uses the absent resource (the
        // builder rejects such *timings*, but graphs arrive from anywhere:
        // reduced constructs, tests, future frontends).
        g.add_node(Node {
            kind: crate::graph::NodeKind::Op(Op::new(
                Opcode::FAdd,
                Some(VReg(0)),
                vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
            )),
            reservation: machine::ReservationTable::single_cycle(phantom, 1),
            len: 1,
        });
        assert_eq!(
            res_mii(&g, &m),
            Err(ZeroCapacity {
                resource: "phantom".to_string()
            })
        );
        // And the scheduler surfaces it as a structured SchedError.
        let err = crate::modsched::modulo_schedule(
            &g,
            &m,
            &crate::modsched::SchedOptions::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            crate::modsched::SchedError::ImpossibleResource {
                resource: "phantom".to_string()
            }
        );
    }

    #[test]
    fn mii_report_combines() {
        let r = MiiReport {
            res_mii: 3,
            rec_mii: 5,
        };
        assert_eq!(r.mii(), 5);
        let r = MiiReport {
            res_mii: 0,
            rec_mii: 0,
        };
        assert_eq!(r.mii(), 1);
    }
}
