//! Hierarchical reduction (Part II of the paper).
//!
//! The program is scheduled hierarchically, innermost constructs first;
//! each scheduled construct is *reduced* to a node "similar to an
//! operation in a basic block" carrying the union of its scheduling
//! constraints, so that basic-block techniques — and, crucially, software
//! pipelining — apply across control constructs.
//!
//! For a conditional (§3.1): the THEN and ELSE branches are first
//! scheduled independently (list scheduling over their own dependence
//! graphs); the reduced node's length is the maximum of the branch
//! lengths, and each reservation-table entry is the maximum of the
//! corresponding branch entries. At code emission time two code sequences
//! are generated, and any operation scheduled in parallel with the
//! construct is duplicated into both arms.
//!
//! Deviating detail, documented in DESIGN.md: the reduced node also claims
//! the machine's sequencer resource for its whole extent. Warp has one
//! sequencer, so two conditional constructs cannot be in flight at once;
//! this both matches the hardware and guarantees the emitted branch
//! regions are well-nested and never wrap around a kernel boundary.

use ir::Stmt;
use machine::{MachineDescription, ReservationTable, ResourceId};

use crate::build::{build_item_graph, BuildOptions};
use crate::compact::linear_place;
use crate::graph::{Access, Node, NodeKind, PlacedItem, ReducedCond};

/// How a reduced conditional advertises its resource usage (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CondMode {
    /// The union (entry-wise max) of the two branches' reservation
    /// tables: operations outside the construct may overlap it. The
    /// paper's default, "optimized for handling short conditional
    /// statements in innermost loops".
    #[default]
    Union,
    /// Every resource marked fully consumed for the construct's whole
    /// extent: nothing overlaps the conditional (no duplication into the
    /// arms), though code still moves *around* it. The paper's fallback
    /// "for those cases that violate this assumption".
    Exclusive,
}

/// Reduces a statement list to a flat sequence of scheduling items:
/// ordinary operations plus reduced conditionals. Returns `None` if the
/// body contains a nested loop (those are handled structurally by the
/// emitter, not by reduction — pipelining an outer loop is out of scope
/// for this reproduction, as it was optional in the paper).
pub fn reduce_stmts(stmts: &[Stmt], mach: &MachineDescription) -> Option<Vec<Node>> {
    reduce_stmts_with(stmts, mach, CondMode::Union)
}

/// As [`reduce_stmts`], selecting the conditional resource mode.
pub fn reduce_stmts_with(
    stmts: &[Stmt],
    mach: &MachineDescription,
    mode: CondMode,
) -> Option<Vec<Node>> {
    let mut items = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Op(op) => items.push(Node::op(
                op.clone(),
                mach.reservation(op.opcode.class()).clone(),
            )),
            Stmt::If(i) => items.push(reduce_if(i, mach, mode)?),
            Stmt::Loop(_) => return None,
        }
    }
    Some(items)
}

fn reduce_if(i: &ir::IfStmt, mach: &MachineDescription, mode: CondMode) -> Option<Node> {
    let then_items = reduce_stmts_with(&i.then_body, mach, mode)?;
    let else_items = reduce_stmts_with(&i.else_body, mach, mode)?;
    let (then_placed, then_res, then_len) = schedule_arm(then_items, mach);
    let (else_placed, else_res, else_len) = schedule_arm(else_items, mach);
    let len = then_len.max(else_len).max(1);

    // Union of the branch constraints: entry-wise max of the reservation
    // tables (§3.1), plus the sequencer for the whole construct; or, in
    // exclusive mode, every unit saturated for the whole extent.
    let mut reservation = ReservationTable::empty();
    match mode {
        CondMode::Union => {
            reservation.add_shifted_max(&then_res, 0);
            reservation.add_shifted_max(&else_res, 0);
            if let Some(seq) = mach.branch_resource() {
                for t in 0..len {
                    reservation.row_mut(t as usize).add(seq, 1);
                }
            }
        }
        CondMode::Exclusive => {
            for t in 0..len {
                for (ri, r) in mach.resources().iter().enumerate() {
                    reservation
                        .row_mut(t as usize)
                        .add(ResourceId(ri as u32), r.count);
                }
            }
        }
    }
    Some(Node {
        kind: NodeKind::Cond(Box::new(ReducedCond {
            cond: i.cond,
            then_items: then_placed,
            else_items: else_placed,
            len,
        })),
        reservation,
        len,
    })
}

/// List-schedules one arm's items against intra-iteration dependences
/// only, returning the placed items, their aggregate reservation table and
/// the arm length.
fn schedule_arm(
    items: Vec<Node>,
    mach: &MachineDescription,
) -> (Vec<PlacedItem>, ReservationTable, u32) {
    if items.is_empty() {
        return (Vec::new(), ReservationTable::empty(), 0);
    }
    let g = build_item_graph(
        items,
        mach,
        BuildOptions {
            loop_carried: false,
            enable_mve: false,
            prune_dominated: false,
            trip: None,
            ..BuildOptions::default()
        },
    );
    let times = linear_place(&g, mach);
    let mut placed = Vec::with_capacity(g.num_nodes());
    let mut reservation = ReservationTable::empty();
    let mut len = 0u32;
    for n in g.node_ids() {
        let t = times[n.index()];
        let node = g.node(n).clone();
        reservation.add_shifted_sum(&node.reservation, t as usize);
        len = len.max(t + node.len);
        placed.push(PlacedItem { offset: t, node });
    }
    (placed, reservation, len)
}

/// Statistics helpers over reduced items.
pub mod stats {
    use super::*;

    /// True if any item is (or contains) a reduced conditional.
    pub fn has_conditional(items: &[Node]) -> bool {
        items.iter().any(|n| matches!(n.kind, NodeKind::Cond(_)))
    }

    /// Number of reduced conditional constructs across all items,
    /// including conditionals nested inside an arm.
    pub fn cond_count(items: &[Node]) -> usize {
        fn count(node: &Node) -> usize {
            match &node.kind {
                NodeKind::Op(_) => 0,
                NodeKind::Cond(rc) => {
                    let mut n = 1;
                    for item in rc.then_items.iter().chain(rc.else_items.iter()) {
                        n += count(&item.node);
                    }
                    n
                }
            }
        }
        items.iter().map(count).sum()
    }

    /// Number of operations across all items, including arm contents.
    pub fn num_ops(items: &[Node]) -> usize {
        let mut n = 0;
        for item in items {
            item.for_each_access(&mut |a| {
                if matches!(a, Access::Op { .. }) {
                    n += 1;
                }
            });
        }
        n
    }

    /// An estimate of the unpipelined (locally compacted, drained)
    /// iteration length of a body of items: list-schedule them linearly
    /// and drain every latency.
    pub fn unpipelined_len(items: &[Node], mach: &MachineDescription) -> u32 {
        if items.is_empty() {
            return 0;
        }
        let g = build_item_graph(
            items.to_vec(),
            mach,
            BuildOptions {
                loop_carried: false,
                enable_mve: false,
                prune_dominated: false,
                trip: None,
                ..BuildOptions::default()
            },
        );
        let times = linear_place(&g, mach);
        let mut end = 0i64;
        for n in g.node_ids() {
            let t = times[n.index()] as i64;
            end = end.max(t + g.node(n).len as i64);
            g.node(n).for_each_access(&mut |a| {
                if let Access::Op { offset, op, .. } = a {
                    let lat = mach.latency(op.opcode.class()) as i64;
                    end = end.max(t + offset as i64 + lat);
                }
            });
        }
        end as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{CmpPred, IfStmt, Op, Opcode, RegTable, Type};
    use machine::presets::test_machine;
    use machine::OpClass;

    fn simple_if(regs: &mut RegTable) -> IfStmt {
        let c = regs.alloc(Type::I32);
        let x = regs.alloc(Type::F32);
        let y = regs.alloc(Type::F32);
        IfStmt {
            cond: c,
            then_body: vec![
                Stmt::Op(Op::new(Opcode::FAdd, Some(y), vec![x.into(), x.into()])),
            ],
            else_body: vec![
                Stmt::Op(Op::new(Opcode::FMul, Some(y), vec![x.into(), x.into()])),
                Stmt::Op(Op::new(Opcode::FAdd, Some(y), vec![y.into(), y.into()])),
            ],
        }
    }

    #[test]
    fn reduce_if_takes_max_of_arms() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let i = simple_if(&mut regs);
        let node = reduce_if(&i, &m, CondMode::Union).expect("no loops inside");
        // ELSE arm: fmul (lat 3) then dependent fadd at t=3, len 4.
        assert_eq!(node.len, 4);
        // Reservation is the max of arms: one fadd at cycle 0 (then arm)
        // and the fmul at 0 / fadd at 3 (else arm).
        let fadd = m.resource_by_name("fadd").expect("resource");
        let fmul = m.resource_by_name("fmul").expect("resource");
        assert_eq!(node.reservation.row(0).units(fadd), 1);
        assert_eq!(node.reservation.row(0).units(fmul), 1);
        assert_eq!(node.reservation.row(3).units(fadd), 1);
        // Sequencer claimed throughout.
        let seq = m.branch_resource().expect("seq");
        for t in 0..4 {
            assert_eq!(node.reservation.row(t).units(seq), 1, "cycle {t}");
        }
        assert!(node.needs_no_wrap());
    }

    #[test]
    fn reduce_rejects_nested_loops() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let c = regs.alloc(Type::I32);
        let i = IfStmt {
            cond: c,
            then_body: vec![Stmt::Loop(ir::Loop {
                trip: ir::TripCount::Const(3),
                body: vec![],
            })],
            else_body: vec![],
        };
        assert!(reduce_if(&i, &m, CondMode::Union).is_none());
    }

    #[test]
    fn nested_conditionals_reduce_recursively() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let inner = simple_if(&mut regs);
        let c2 = regs.alloc(Type::I32);
        let outer = IfStmt {
            cond: c2,
            then_body: vec![Stmt::If(inner)],
            else_body: vec![],
        };
        let node = reduce_if(&outer, &m, CondMode::Union).expect("reducible");
        // Outer length covers the inner construct.
        assert!(node.len >= 4);
        match &node.kind {
            NodeKind::Cond(rc) => {
                assert_eq!(rc.then_items.len(), 1);
                assert!(matches!(rc.then_items[0].node.kind, NodeKind::Cond(_)));
            }
            other => panic!("expected cond, got {other:?}"),
        }
        // Flattened accesses see both levels' ops and both cond reads.
        let mut conds = 0;
        let mut ops = 0;
        node.for_each_access(&mut |a| match a {
            Access::CondUse { .. } => conds += 1,
            Access::Op { .. } => ops += 1,
        });
        assert_eq!(conds, 2);
        assert_eq!(ops, 3);
    }

    #[test]
    fn reduce_stmts_mixes_ops_and_conds() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let d = regs.alloc(Type::I32);
        let i = simple_if(&mut regs);
        let stmts = vec![
            Stmt::Op(Op::new(
                Opcode::ICmp(CmpPred::Gt),
                Some(d),
                vec![0i32.into(), 1i32.into()],
            )),
            Stmt::If(i),
            Stmt::Op(Op::new(Opcode::QPush, None, vec![x.into()])),
        ];
        let items = reduce_stmts(&stmts, &m).expect("reducible");
        assert_eq!(items.len(), 3);
        assert!(stats::has_conditional(&items));
        assert_eq!(stats::num_ops(&items), 5);
        assert!(stats::unpipelined_len(&items, &m) >= 4);
    }

    #[test]
    fn arm_scheduling_respects_resources() {
        // Two independent fadds in one arm share the single adder: the arm
        // is 2+ cycles long even though they are data independent.
        let m = test_machine();
        let mut regs = RegTable::new();
        let c = regs.alloc(Type::I32);
        let x = regs.alloc(Type::F32);
        let y1 = regs.alloc(Type::F32);
        let y2 = regs.alloc(Type::F32);
        let i = IfStmt {
            cond: c,
            then_body: vec![
                Stmt::Op(Op::new(Opcode::FAdd, Some(y1), vec![x.into(), x.into()])),
                Stmt::Op(Op::new(Opcode::FAdd, Some(y2), vec![x.into(), x.into()])),
            ],
            else_body: vec![],
        };
        let node = reduce_if(&i, &m, CondMode::Union).expect("reducible");
        assert!(node.len >= 2);
        let fadd = m.resource_by_name("fadd").expect("resource");
        // Never more than one adder per cycle inside the construct.
        for row in node.reservation.rows() {
            assert!(row.units(fadd) <= 1);
        }
    }

    #[test]
    fn op_class_reservations_flow_through() {
        // Items built by reduce_stmts carry machine reservations.
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let y = regs.alloc(Type::F32);
        let stmts = vec![Stmt::Op(Op::new(
            Opcode::FMul,
            Some(y),
            vec![x.into(), x.into()],
        ))];
        let items = reduce_stmts(&stmts, &m).expect("reducible");
        assert_eq!(items[0].reservation, *m.reservation(OpClass::FloatMul));
    }
}
