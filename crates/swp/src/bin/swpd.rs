//! `swpd` — the scheduling daemon.
//!
//! Binds a unix socket and serves framed compile requests from the
//! content-addressed schedule cache, compiling misses on the batch
//! worker pool. See `swp::service` and DESIGN.md §14.
//!
//! ```text
//! swpd --socket /tmp/swpd.sock [--threads N] [--cache-bytes N] [--revalidate-every N]
//!      [--max-connections N]
//! ```
//!
//! The daemon runs until a client sends a `Shutdown` request. A stale
//! socket file from a previous run is removed at startup.

use std::process::ExitCode;

use swp::service::{serve_unix_with, ServeConfig};

struct Args {
    socket: std::path::PathBuf,
    cfg: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: swpd --socket PATH [--threads N] [--cache-bytes N] [--revalidate-every N]\n\
         \x20           [--max-connections N]\n\
         \n\
         --socket PATH         unix socket to bind (required)\n\
         --threads N           worker threads for cache misses (default: host cores)\n\
         --cache-bytes N       cache byte budget, 0 disables (default: 67108864)\n\
         --revalidate-every N  revalidate every Nth hit, 0 disables (default: 16)\n\
         --max-connections N   concurrently served connections (default: 8)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut socket = None;
    let mut cfg = ServeConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| {
            eprintln!("swpd: {flag} needs a value");
            usage()
        });
        match flag.as_str() {
            "--socket" => socket = Some(std::path::PathBuf::from(value("--socket"))),
            "--threads" => {
                cfg.threads = value("--threads").parse().unwrap_or_else(|_| usage())
            }
            "--cache-bytes" => {
                cfg.cache_bytes = value("--cache-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--revalidate-every" => {
                cfg.revalidate_every = value("--revalidate-every")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-connections" => {
                cfg.max_connections = value("--max-connections")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("swpd: unknown flag {other}");
                usage();
            }
        }
    }
    let socket = socket.unwrap_or_else(|| {
        eprintln!("swpd: --socket is required");
        usage();
    });
    Args { socket, cfg }
}

fn main() -> ExitCode {
    let args = parse_args();
    // A previous daemon's socket file would make bind fail with
    // AddrInUse; connecting clients would have failed anyway if that
    // daemon were still alive, so removal is safe for the single-daemon
    // deployments this serves.
    let _ = std::fs::remove_file(&args.socket);
    let listener = match std::os::unix::net::UnixListener::bind(&args.socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("swpd: cannot bind {}: {e}", args.socket.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "swpd: listening on {} (threads={}, cache-bytes={}, revalidate-every={}, max-connections={})",
        args.socket.display(),
        args.cfg.threads,
        args.cfg.cache_bytes,
        args.cfg.revalidate_every,
        args.cfg.max_connections
    );
    let result = serve_unix_with(&listener, args.cfg);
    let _ = std::fs::remove_file(&args.socket);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("swpd: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
