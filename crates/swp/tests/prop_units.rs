//! Property tests on the scheduler's core data structures, on the in-tree
//! harness (`swp::testkit`). Case-spaces match the previous `proptest`
//! formulation; schedule-producing properties additionally assert static
//! legality through `swp::verify`.

use machine::presets::test_machine;
use machine::{OpClass, ReservationTable};
use swp::testkit::{check, shrink_i64, shrink_vec, Config, SplitMix64};
use swp::{DistSet, ModuloTable};

/// Pareto pruning must never change the evaluated longest-path weight at
/// any initiation interval.
#[test]
fn distset_eval_matches_naive() {
    check(
        "distset_eval_matches_naive",
        Config::default(),
        |r| {
            (
                r.vec_of(1, 20, |r| (r.range_i64(-40, 40), r.below(6) as u32)),
                1 + r.below(19) as u32,
            )
        },
        |(entries, s)| {
            shrink_vec(entries, |&(d, o)| {
                shrink_i64(d).into_iter().map(|d2| (d2, o)).collect()
            })
            .into_iter()
            .map(|e| (e, *s))
            .collect()
        },
        |(entries, s)| {
            let mut set = DistSet::empty();
            for &(d, o) in entries {
                set.insert(d, o);
            }
            let naive = entries
                .iter()
                .map(|&(d, o)| d - *s as i64 * o as i64)
                .max();
            if set.eval(*s) == naive {
                Ok(())
            } else {
                Err(format!("eval {:?} != naive {naive:?}", set.eval(*s)))
            }
        },
    );
}

/// `combine` distributes over `eval` as path concatenation: the best
/// combined weight equals the best sum of parts at every interval.
#[test]
fn distset_combine_is_pathwise_sum() {
    let gen_entries = |r: &mut SplitMix64| {
        r.vec_of(1, 8, |r| (r.range_i64(-20, 20), r.below(4) as u32))
    };
    check(
        "distset_combine_is_pathwise_sum",
        Config::default(),
        |r| (gen_entries(r), gen_entries(r), 1 + r.below(15) as u32),
        |(xs, ys, s)| {
            let mut out: Vec<_> = shrink_vec(xs, |_| Vec::new())
                .into_iter()
                .map(|x| (x, ys.clone(), *s))
                .collect();
            out.extend(
                shrink_vec(ys, |_| Vec::new())
                    .into_iter()
                    .map(|y| (xs.clone(), y, *s)),
            );
            out
        },
        |(xs, ys, s)| {
            let mut a = DistSet::empty();
            for &(d, o) in xs {
                a.insert(d, o);
            }
            let mut b = DistSet::empty();
            for &(d, o) in ys {
                b.insert(d, o);
            }
            let c = a.combine(&b);
            let expect = xs
                .iter()
                .flat_map(|&(d1, o1)| {
                    ys.iter()
                        .map(move |&(d2, o2)| (d1 + d2) - *s as i64 * (o1 + o2) as i64)
                })
                .max();
            if c.eval(*s) == expect {
                Ok(())
            } else {
                Err(format!("combine {:?} != pathwise {expect:?}", c.eval(*s)))
            }
        },
    );
}

/// Modulo reservation: placing then removing restores feasibility exactly;
/// overlapping placements never exceed capacity.
#[test]
fn modulo_table_place_remove_roundtrip() {
    check(
        "modulo_table_place_remove_roundtrip",
        Config::default(),
        |r| {
            (
                1 + r.below(11) as u32,
                r.vec_of(1, 24, |r| (r.range_i64(0, 48), r.below(4) as usize)),
            )
        },
        |(s, slots)| {
            shrink_vec(slots, |_| Vec::new())
                .into_iter()
                .map(|sl| (*s, sl))
                .collect()
        },
        |(s, slots)| {
            let m = test_machine();
            let classes = [
                OpClass::FloatAdd,
                OpClass::FloatMul,
                OpClass::MemLoad,
                OpClass::Alu,
            ];
            let mut table = ModuloTable::new(&m, *s);
            let mut placed: Vec<(ReservationTable, i64)> = Vec::new();
            for &(t, c) in slots {
                let res = m.reservation(classes[c]).clone();
                if table.fits(&res, t) {
                    table.place(&res, t);
                    placed.push((res, t));
                }
            }
            // Remove everything; the empty table accepts anything again.
            for (res, t) in placed.into_iter().rev() {
                table.remove(&res, t);
            }
            for c in classes {
                if !table.fits(m.reservation(c), 0) {
                    return Err(format!("{c:?} does not fit an emptied table"));
                }
            }
            Ok(())
        },
    );
}

/// The alias oracle is consistent: swapping the operands flips the sign of
/// a definite distance and preserves Never/Unknown.
#[test]
fn alias_antisymmetry() {
    check(
        "alias_antisymmetry",
        Config::default(),
        |r| {
            (
                (r.range_i64(-3, 4), r.range_i64(-6, 6)),
                (r.range_i64(-3, 4), r.range_i64(-6, 6)),
            )
        },
        |_| Vec::new(),
        |&((s1, o1), (s2, o2))| {
            use ir::{alias, Alias, ArrayId, MemRef};
            let a = MemRef::affine(ArrayId(0), s1, o1);
            let b = MemRef::affine(ArrayId(0), s2, o2);
            match (alias(&a, &b), alias(&b, &a)) {
                (Alias::Never, Alias::Never) => Ok(()),
                (Alias::Unknown, Alias::Unknown) => Ok(()),
                (Alias::Always, Alias::Always) => Ok(()),
                (Alias::At { distance: d1 }, Alias::At { distance: d2 }) => {
                    if d1 == -d2 {
                        Ok(())
                    } else {
                        Err(format!("distances not antisymmetric: {d1} vs {d2}"))
                    }
                }
                (x, y) => Err(format!("inconsistent: {x:?} vs {y:?}")),
            }
        },
    );
}

/// Random acyclic op sequences always produce schedules the independent
/// verifier accepts — the static half of the oracle, applied directly to
/// the scheduler's output.
#[test]
fn random_chains_verify_clean() {
    use ir::{Op, Opcode, RegTable, Type};
    use swp::{build_graph, modulo_schedule, BuildOptions, SchedOptions};
    check(
        "random_chains_verify_clean",
        Config::with_cases(32),
        // A chain layout: op kinds (0 add, 1 mul) and whether each op
        // chains on the previous result or restarts from the root.
        |r| r.vec_of(1, 12, |r| (r.below(2) as u8, r.chance(0.6))),
        |v| shrink_vec(v, |_| Vec::new()),
        |layout| {
            let m = test_machine();
            let mut regs = RegTable::new();
            let root = regs.alloc(Type::F32);
            let mut ops = Vec::new();
            let mut cur = root;
            for &(kind, chained) in layout {
                let d = regs.alloc(Type::F32);
                let src = if chained { cur } else { root };
                let opcode = if kind == 0 { Opcode::FAdd } else { Opcode::FMul };
                ops.push(Op::new(opcode, Some(d), vec![src.into(), src.into()]));
                cur = d;
            }
            let g = build_graph(&ops, &m, BuildOptions::default());
            let r = modulo_schedule(&g, &m, &SchedOptions::default())
                .map_err(|e| format!("no schedule: {e:?}"))?;
            let vs = swp::verify::verify_schedule(&g, &r.schedule, &m, "chain");
            if vs.is_empty() {
                Ok(())
            } else {
                let lines: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                Err(format!("verifier rejected the schedule:\n{}", lines.join("\n")))
            }
        },
    );
}

/// Schedules found for random acyclic chains always validate and meet the
/// resource bound exactly when no recurrence binds.
#[test]
fn chain_schedules_hit_resource_bound() {
    use ir::{Op, Opcode, RegTable, Type};
    use swp::{build_graph, modulo_schedule, BuildOptions, SchedOptions};
    let m = test_machine();
    for chain_len in 1..10usize {
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let mut ops = Vec::new();
        let mut cur = x;
        for i in 0..chain_len {
            let d = regs.alloc(Type::F32);
            let opcode = if i % 2 == 0 { Opcode::FAdd } else { Opcode::FMul };
            ops.push(Op::new(opcode, Some(d), vec![cur.into(), cur.into()]));
            cur = d;
        }
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        r.schedule.validate(&g, &m).unwrap();
        assert!(
            swp::verify::verify_schedule(&g, &r.schedule, &m, "chain").is_empty(),
            "verifier agrees with validate (len {chain_len})"
        );
        assert_eq!(
            r.schedule.ii(),
            r.mii.mii(),
            "acyclic chains schedule at the bound (len {chain_len})"
        );
    }
}
