//! Property tests on the scheduler's core data structures.

use machine::presets::test_machine;
use machine::{OpClass, ReservationTable};
use proptest::prelude::*;
use swp::{DistSet, ModuloTable};

proptest! {
    /// Pareto pruning must never change the evaluated longest-path weight
    /// at any initiation interval.
    #[test]
    fn distset_eval_matches_naive(
        entries in proptest::collection::vec((-40i64..40, 0u32..6), 1..20),
        s in 1u32..20,
    ) {
        let mut set = DistSet::empty();
        for &(d, o) in &entries {
            set.insert(d, o);
        }
        let naive = entries
            .iter()
            .map(|&(d, o)| d - s as i64 * o as i64)
            .max();
        prop_assert_eq!(set.eval(s), naive);
    }

    /// `combine` distributes over `eval` as path concatenation: the best
    /// combined weight equals the best sum of parts at every interval.
    #[test]
    fn distset_combine_is_pathwise_sum(
        xs in proptest::collection::vec((-20i64..20, 0u32..4), 1..8),
        ys in proptest::collection::vec((-20i64..20, 0u32..4), 1..8),
        s in 1u32..16,
    ) {
        let mut a = DistSet::empty();
        for &(d, o) in &xs {
            a.insert(d, o);
        }
        let mut b = DistSet::empty();
        for &(d, o) in &ys {
            b.insert(d, o);
        }
        let c = a.combine(&b);
        let expect = xs
            .iter()
            .flat_map(|&(d1, o1)| {
                ys.iter()
                    .map(move |&(d2, o2)| (d1 + d2) - s as i64 * (o1 + o2) as i64)
            })
            .max();
        prop_assert_eq!(c.eval(s), expect);
    }

    /// Modulo reservation: placing then removing restores feasibility
    /// exactly; overlapping placements never exceed capacity.
    #[test]
    fn modulo_table_place_remove_roundtrip(
        s in 1u32..12,
        slots in proptest::collection::vec((0i64..48, 0usize..4), 1..24),
    ) {
        let m = test_machine();
        let classes = [
            OpClass::FloatAdd,
            OpClass::FloatMul,
            OpClass::MemLoad,
            OpClass::Alu,
        ];
        let mut table = ModuloTable::new(&m, s);
        let mut placed: Vec<(ReservationTable, i64)> = Vec::new();
        for &(t, c) in &slots {
            let res = m.reservation(classes[c]).clone();
            if table.fits(&res, t) {
                table.place(&res, t);
                placed.push((res, t));
            }
        }
        // Remove everything; the empty table accepts anything again.
        for (res, t) in placed.into_iter().rev() {
            table.remove(&res, t);
        }
        for c in classes {
            prop_assert!(table.fits(m.reservation(c), 0));
        }
    }

    /// The alias oracle is consistent: swapping the operands flips the
    /// sign of a definite distance and preserves Never/Unknown.
    #[test]
    fn alias_antisymmetry(
        s1 in -3i64..4, o1 in -6i64..6,
        s2 in -3i64..4, o2 in -6i64..6,
    ) {
        use ir::{alias, Alias, ArrayId, MemRef};
        let a = MemRef::affine(ArrayId(0), s1, o1);
        let b = MemRef::affine(ArrayId(0), s2, o2);
        match (alias(&a, &b), alias(&b, &a)) {
            (Alias::Never, Alias::Never) => {}
            (Alias::Unknown, Alias::Unknown) => {}
            (Alias::At { distance: d1 }, Alias::At { distance: d2 }) => {
                prop_assert_eq!(d1, -d2);
            }
            (x, y) => prop_assert!(false, "inconsistent: {:?} vs {:?}", x, y),
        }
    }
}

/// Schedules found for random acyclic chains always validate and meet the
/// resource bound exactly when no recurrence binds.
#[test]
fn chain_schedules_hit_resource_bound() {
    use ir::{Op, Opcode, RegTable, Type};
    use swp::{build_graph, modulo_schedule, BuildOptions, SchedOptions};
    let m = test_machine();
    for chain_len in 1..10usize {
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let mut ops = Vec::new();
        let mut cur = x;
        for i in 0..chain_len {
            let d = regs.alloc(Type::F32);
            let opcode = if i % 2 == 0 { Opcode::FAdd } else { Opcode::FMul };
            ops.push(Op::new(opcode, Some(d), vec![cur.into(), cur.into()]));
            cur = d;
        }
        let g = build_graph(&ops, &m, BuildOptions::default());
        let r = modulo_schedule(&g, &m, &SchedOptions::default()).unwrap();
        r.schedule.validate(&g, &m).unwrap();
        assert_eq!(
            r.schedule.ii(),
            r.mii.mii(),
            "acyclic chains schedule at the bound (len {chain_len})"
        );
    }
}
