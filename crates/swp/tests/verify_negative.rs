//! Negative tests for the static legality verifier: seed one illegal
//! schedule per constraint category and check that `swp::verify` detects
//! it, localizes it (cycle / node / constraint identifiers), and stays
//! quiet on the corrected version of the same input.

use ir::{Imm, Op, Opcode, RegTable, Type, VReg};
use machine::presets::test_machine;
use machine::{MachineDescription, OpClass};
use swp::verify::{verify_expansion, verify_object_code, verify_schedule, Constraint};
use swp::{
    Block, BlockId, DepEdge, DepGraph, DepKind, Expansion, Node, NodeId, Schedule, Terminator,
    VliwProgram, Word,
};

fn fadd(m: &MachineDescription, dst: u32) -> Node {
    Node::op(
        Op::new(
            Opcode::FAdd,
            Some(VReg(dst)),
            vec![Imm::F(0.0).into(), Imm::F(0.0).into()],
        ),
        m.reservation(OpClass::FloatAdd).clone(),
    )
}

/// Resource oversubscription: two ops on the one-adder test machine whose
/// modulo rows collide at the chosen interval.
#[test]
fn detects_resource_oversubscription() {
    let m = test_machine();
    let mut g = DepGraph::new();
    g.add_node(fadd(&m, 0));
    g.add_node(fadd(&m, 1));
    // ii = 2: cycles 0 and 4 share modulo row 0 on the single adder.
    let bad = Schedule::new(vec![0, 4], 2);
    let vs = verify_schedule(&g, &bad, &m, "loop");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].constraint, Constraint::Modulo);
    assert_eq!(vs[0].node, Some(NodeId(1)));
    assert_eq!(vs[0].cycle, Some(4));
    assert!(vs[0].detail.contains("fadd"), "{}", vs[0].detail);

    // Moving the second op to an odd cycle fixes it.
    let good = Schedule::new(vec![0, 3], 2);
    assert!(verify_schedule(&g, &good, &m, "loop").is_empty());
}

/// A violated dependence edge: sigma(v) - sigma(u) < d - s*p.
#[test]
fn detects_violated_dependence_edge() {
    let m = test_machine();
    let mut g = DepGraph::new();
    let a = g.add_node(fadd(&m, 0));
    let b = g.add_node(fadd(&m, 1));
    g.add_edge(DepEdge::new(a, b, 0, 2, DepKind::True));
    let bad = Schedule::new(vec![0, 1], 2);
    let vs = verify_schedule(&g, &bad, &m, "loop");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].constraint, Constraint::Dependence);
    assert_eq!(vs[0].node, Some(b));
    assert!(vs[0].detail.contains("d=2"), "{}", vs[0].detail);

    assert!(verify_schedule(&g, &Schedule::new(vec![0, 3], 2), &m, "loop").is_empty());
}

/// A loop-carried edge is relaxed by s*omega — and violated when the
/// interval shrinks below the recurrence bound.
#[test]
fn detects_carried_dependence_violation() {
    let m = test_machine();
    let mut g = DepGraph::new();
    let a = g.add_node(fadd(&m, 0));
    g.add_edge(DepEdge::new(a, a, 1, 2, DepKind::True));
    // Self-edge d=2 omega=1 needs ii >= 2; ii = 1 violates it.
    let vs = verify_schedule(&g, &Schedule::new(vec![0], 1), &m, "loop");
    assert!(
        vs.iter().any(|v| v.constraint == Constraint::Dependence),
        "{vs:?}"
    );
    assert!(verify_schedule(&g, &Schedule::new(vec![0], 2), &m, "loop").is_empty());
}

/// Overlapping MVE lifetimes: a value live for `lifetime` cycles gets too
/// few rotating copies, so iteration j+n overwrites it before its last
/// use.
#[test]
fn detects_overlapping_mve_lifetimes() {
    let m = test_machine();
    let mut regs = RegTable::new();
    let v = regs.alloc(Type::F32);
    let w = regs.alloc(Type::F32);
    let mut g = DepGraph::new();
    // def v at cycle 0 (fadd, latency 2), use v at cycle 9: lifetime 9.
    let a = g.add_node(Node::op(
        Op::new(
            Opcode::FAdd,
            Some(v),
            vec![Imm::F(0.0).into(), Imm::F(0.0).into()],
        ),
        m.reservation(OpClass::FloatAdd).clone(),
    ));
    let b = g.add_node(Node::op(
        Op::new(Opcode::FAdd, Some(w), vec![v.into(), v.into()]),
        m.reservation(OpClass::FloatAdd).clone(),
    ));
    g.add_edge(DepEdge::new(a, b, 0, 2, DepKind::True));
    g.expandable.push(v);
    let sched = Schedule::new(vec![0, 9], 2);

    // One location (unexpanded): 1*2 + 2 = 4 <= 9 — iteration j+1's write
    // lands mid-lifetime. The verifier must object.
    let too_few = Expansion {
        unroll: 1,
        copies: Default::default(),
        lifetimes: Default::default(),
    };
    let vs = verify_expansion(&g, &sched, &too_few, &m, "loop");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].constraint, Constraint::Lifetime);
    assert!(vs[0].detail.contains("lifetime 9"), "{}", vs[0].detail);

    // Four copies: 4*2 + 2 = 10 > 9 — legal.
    let enough = Expansion {
        unroll: 4,
        copies: [(v, vec![v, VReg(10), VReg(11), VReg(12)])]
            .into_iter()
            .collect(),
        lifetimes: Default::default(),
    };
    assert!(verify_expansion(&g, &sched, &enough, &m, "loop").is_empty());

    // Three copies out of unroll 4: enough locations (3*2 + 2 = 8 <= 9 is
    // still too few) — and 3 does not divide 4, which is flagged even
    // when the count itself would suffice.
    let indivisible = Expansion {
        unroll: 4,
        copies: [(v, vec![v, VReg(10), VReg(11)])].into_iter().collect(),
        lifetimes: Default::default(),
    };
    let vs = verify_expansion(&g, &sched, &indivisible, &m, "loop");
    assert!(
        vs.iter().any(|x| x.detail.contains("divide")),
        "{vs:?}"
    );
}

/// Object-code resource oversubscription: a word issuing two adds on a
/// one-adder machine.
#[test]
fn detects_object_code_oversubscription() {
    let m = test_machine();
    let mut regs = RegTable::new();
    let a = regs.alloc(Type::F32);
    let b = regs.alloc(Type::F32);
    let mk = |dst: VReg| {
        Op::new(
            Opcode::FAdd,
            Some(dst),
            vec![Imm::F(0.0).into(), Imm::F(0.0).into()],
        )
    };
    let mut block = Block::new("entry");
    block.words.push(Word {
        ops: vec![mk(a), mk(b)],
    });
    let p = VliwProgram {
        name: "bad".into(),
        regs,
        arrays: vec![],
        mem_size: 0,
        blocks: vec![block],
        entry: BlockId(0),
    };
    let vs = verify_object_code(&p, &m);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].constraint, Constraint::Resource);
    assert_eq!(vs[0].cycle, Some(0));
    assert!(vs[0].detail.contains("fadd"), "{}", vs[0].detail);
}

/// Steady-state wraparound: a self-looping block whose multi-cycle
/// reservation spills past the block end onto its own next pass. The
/// linear per-block check accepts it; only the wrapped check catches it.
#[test]
fn detects_steady_state_wrap_oversubscription() {
    let m = test_machine();
    let mut regs = RegTable::new();
    let d = regs.alloc(Type::F32);
    let c = regs.alloc(Type::I32);
    // FDiv blocks the fmul unit for 3 cycles on the test machine; a
    // 2-word self-loop re-enters while 1 cycle of blockage remains.
    let mut block = Block::new("tight.kernel");
    block.words.push(Word {
        ops: vec![Op::new(
            Opcode::FDiv,
            Some(d),
            vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
        )],
    });
    block.words.push(Word::empty());
    block.term = Terminator::CountedLoop {
        counter: c,
        dec: 1,
        back: BlockId(0),
        exit: BlockId(1),
    };
    let done = Block::new("done");
    let p = VliwProgram {
        name: "wrap".into(),
        regs,
        arrays: vec![],
        mem_size: 0,
        blocks: vec![block, done],
        entry: BlockId(0),
    };
    let vs = verify_object_code(&p, &m);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].constraint, Constraint::Resource);
    assert!(
        vs[0].detail.contains("steady-state wrap"),
        "{}",
        vs[0].detail
    );

    // The same block with a 3-word body (period = blockage) is legal.
    let mut regs = RegTable::new();
    let d = regs.alloc(Type::F32);
    let c = regs.alloc(Type::I32);
    let mut ok = Block::new("tight.kernel");
    ok.words.push(Word {
        ops: vec![Op::new(
            Opcode::FDiv,
            Some(d),
            vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
        )],
    });
    ok.words.push(Word::empty());
    ok.words.push(Word::empty());
    ok.term = Terminator::CountedLoop {
        counter: c,
        dec: 1,
        back: BlockId(0),
        exit: BlockId(1),
    };
    let p = VliwProgram {
        name: "wrap_ok".into(),
        regs,
        arrays: vec![],
        mem_size: 0,
        blocks: vec![ok, Block::new("done")],
        entry: BlockId(0),
    };
    assert!(verify_object_code(&p, &m).is_empty());
}

/// A schedule that does not cover the graph is reported as a stage
/// inconsistency, not a panic.
#[test]
fn detects_schedule_graph_mismatch() {
    let m = test_machine();
    let mut g = DepGraph::new();
    g.add_node(fadd(&m, 0));
    g.add_node(fadd(&m, 1));
    let vs = verify_schedule(&g, &Schedule::new(vec![0], 2), &m, "loop");
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].constraint, Constraint::Stage);
    assert!(vs[0].detail.contains("covers 1"), "{}", vs[0].detail);
}
