//! IR structural lints: initialization (A001), unused registers (A002),
//! dead operations (A003), type consistency (A004), and conservative
//! memory references (A201).

use std::collections::BTreeSet;

use ir::{MemPattern, Opcode, Program, Stmt, TripCount, VReg};

use crate::diag::{Diagnostic, LintCode};

/// Runs every IR lint over a program.
pub fn lint_program(p: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_types(p, &mut diags);
    check_initialization(p, &mut diags);
    check_register_usage(p, &mut diags);
    check_mem_refs(p, &mut diags);
    diags
}

fn reg_label(p: &Program, r: VReg) -> String {
    match p.regs.name(r) {
        Some(n) => format!("{r} ('{n}')"),
        None => r.to_string(),
    }
}

/// A004: every operation must type-check against the register table.
fn check_types(p: &Program, diags: &mut Vec<Diagnostic>) {
    p.for_each_op(|op| {
        if let Err(e) = op.type_check(&p.regs) {
            diags.push(Diagnostic::new(
                LintCode::TypeError,
                format!("in '{}': {e}", p.name),
            ));
        }
    });
}

/// A001: def-before-use, including across iterations. A use inside a loop
/// body is initialized if a definition reaches it from before the loop or
/// from earlier in the body; a use whose only definitions come *later* in
/// the body reads the previous iteration's value — which does not exist on
/// the first iteration unless the register was also defined before the
/// loop.
fn check_initialization(p: &Program, diags: &mut Vec<Diagnostic>) {
    let mut defined: BTreeSet<VReg> = BTreeSet::new();
    let mut reported: BTreeSet<VReg> = BTreeSet::new();
    check_init_stmts(p, &p.body, &mut defined, &mut reported, diags);
}

fn check_init_stmts(
    p: &Program,
    stmts: &[Stmt],
    defined: &mut BTreeSet<VReg>,
    reported: &mut BTreeSet<VReg>,
    diags: &mut Vec<Diagnostic>,
) {
    let check_use = |r: VReg, defined: &BTreeSet<VReg>,
                         reported: &mut BTreeSet<VReg>,
                         diags: &mut Vec<Diagnostic>,
                         what: &str| {
        if !defined.contains(&r) && reported.insert(r) {
            diags.push(
                Diagnostic::new(
                    LintCode::UninitializedRead,
                    format!(
                        "in '{}': {} reads {} before any definition reaches it",
                        p.name,
                        what,
                        reg_label(p, r)
                    ),
                )
                .with_note(
                    "a loop-body use defined only later in the body reads the previous \
                     iteration's value, which is undefined on the first iteration",
                ),
            );
        }
    };
    for s in stmts {
        match s {
            Stmt::Op(op) => {
                for r in op.uses() {
                    check_use(r, defined, reported, diags, &format!("op '{op}'"));
                }
                if let Some(d) = op.def() {
                    defined.insert(d);
                }
            }
            Stmt::If(i) => {
                check_use(i.cond, defined, reported, diags, "if condition");
                let mut then_defs = defined.clone();
                check_init_stmts(p, &i.then_body, &mut then_defs, reported, diags);
                let mut else_defs = defined.clone();
                check_init_stmts(p, &i.else_body, &mut else_defs, reported, diags);
                // Only definitions on both arms definitely reach the join.
                *defined = then_defs.intersection(&else_defs).copied().collect();
            }
            Stmt::Loop(l) => {
                if let TripCount::Reg(r) = l.trip {
                    check_use(r, defined, reported, diags, "loop trip count");
                }
                // First iteration: only pre-loop and earlier-in-body
                // definitions reach a use.
                check_init_stmts(p, &l.body, defined, reported, diags);
                // After the loop the body's definitions are visible (the
                // trip count may be zero, but flagging downstream uses
                // would be noise, not a missed defect — this is a lint).
            }
        }
    }
}

/// A002 (register never referenced at all) and A003 (operation whose
/// result nothing reads). Opcodes with side effects besides their
/// destination (`QPop` drains a queue) are never dead.
fn check_register_usage(p: &Program, diags: &mut Vec<Diagnostic>) {
    let mut read: BTreeSet<VReg> = BTreeSet::new();
    let mut written: BTreeSet<VReg> = BTreeSet::new();
    collect_reads(&p.body, &mut read);
    p.for_each_op(|op| {
        if let Some(d) = op.def() {
            written.insert(d);
        }
    });
    for r in p.regs.iter() {
        if !read.contains(&r) && !written.contains(&r) {
            diags.push(Diagnostic::new(
                LintCode::UnusedRegister,
                format!(
                    "in '{}': register {} is allocated but never referenced",
                    p.name,
                    reg_label(p, r)
                ),
            ));
        }
    }
    p.for_each_op(|op| {
        if let Some(d) = op.def() {
            if !read.contains(&d) && op.opcode != Opcode::QPop {
                diags.push(Diagnostic::new(
                    LintCode::DeadOp,
                    format!(
                        "in '{}': result of '{op}' is never read",
                        p.name
                    ),
                ));
            }
        }
    });
}

fn collect_reads(stmts: &[Stmt], read: &mut BTreeSet<VReg>) {
    for s in stmts {
        match s {
            Stmt::Op(op) => read.extend(op.uses()),
            Stmt::If(i) => {
                read.insert(i.cond);
                collect_reads(&i.then_body, read);
                collect_reads(&i.else_body, read);
            }
            Stmt::Loop(l) => {
                if let TripCount::Reg(r) = l.trip {
                    read.insert(r);
                }
                collect_reads(&l.body, read);
            }
        }
    }
}

/// A201: memory operations whose reference cannot be disambiguated.
/// `mem: None` and `MemPattern::Unknown` both force the dependence
/// builder to add worst-case edges (forward at distance 0 plus carried at
/// distance 1 between every conflicting pair), which inflates RecMII.
fn check_mem_refs(p: &Program, diags: &mut Vec<Diagnostic>) {
    p.for_each_op(|op| {
        if !op.touches_memory() {
            return;
        }
        let why = match &op.mem {
            None => Some("has no MemRef metadata"),
            Some(m) if m.pattern == MemPattern::Unknown => {
                Some("has an Unknown subscript pattern")
            }
            Some(_) => None,
        };
        if let Some(why) = why {
            diags.push(
                Diagnostic::new(
                    LintCode::UnknownMemRef,
                    format!("in '{}': '{op}' {why}", p.name),
                )
                .with_note(
                    "conservative aliasing adds loop-carried dependence edges at all \
                     distances, raising RecMII and serializing memory traffic",
                ),
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{ProgramBuilder, TripCount};

    /// A minimal well-formed loop: every lint must stay silent.
    fn clean_program() -> Program {
        let mut b = ProgramBuilder::new("clean");
        let a = b.array("a", 16);
        b.for_counted(TripCount::Const(16), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
        });
        b.finish()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        assert_eq!(lint_program(&clean_program()), Vec::new());
    }

    #[test]
    fn a001_fires_on_read_of_undefined_register() {
        let mut p = clean_program();
        let ghost = p.regs.alloc(ir::Type::F32);
        let dst = p.regs.alloc(ir::Type::F32);
        p.body.push(Stmt::Op(ir::Op::new(
            Opcode::FNeg,
            Some(dst),
            vec![ghost.into()],
        )));
        let diags = lint_program(&p);
        assert!(codes(&diags).contains(&"A001"), "{diags:?}");
    }

    #[test]
    fn a001_fires_on_first_iteration_recurrence_without_init() {
        // s = s + 1.0 inside a loop, with no definition of s before the
        // loop: iteration 0 reads garbage.
        let mut b = ProgramBuilder::new("t");
        let _a = b.array("a", 4);
        let p = b.finish();
        let mut p = p;
        let s = p.regs.alloc(ir::Type::F32);
        p.body.push(Stmt::Loop(ir::Loop {
            trip: TripCount::Const(4),
            body: vec![Stmt::Op(ir::Op::new(
                Opcode::FAdd,
                Some(s),
                vec![s.into(), 1.0f32.into()],
            ))],
        }));
        let diags = lint_program(&p);
        assert!(codes(&diags).contains(&"A001"), "{diags:?}");
    }

    #[test]
    fn a001_silent_when_recurrence_initialized_before_loop() {
        let mut b = ProgramBuilder::new("t");
        let out = b.array("o", 1);
        let s = b.fconst(0.0);
        b.for_counted(TripCount::Const(4), |b, _i| {
            b.push_op(ir::Op::new(Opcode::FAdd, Some(s), vec![s.into(), 1.0f32.into()]));
        });
        b.store_fixed(out, 0, s.into());
        let diags = lint_program(&b.finish());
        assert!(!codes(&diags).contains(&"A001"), "{diags:?}");
    }

    #[test]
    fn a002_fires_on_never_referenced_register() {
        let mut p = clean_program();
        p.regs.alloc_named(ir::Type::F32, "ghost");
        let diags = lint_program(&p);
        assert!(codes(&diags).contains(&"A002"), "{diags:?}");
        assert!(
            diags.iter().any(|d| d.message.contains("'ghost'")),
            "{diags:?}"
        );
    }

    #[test]
    fn a003_fires_on_dead_computation() {
        let mut p = clean_program();
        let dead = p.regs.alloc(ir::Type::F32);
        p.body.push(Stmt::Op(ir::Op::new(
            Opcode::Const,
            Some(dead),
            vec![ir::Imm::F(3.0).into()],
        )));
        let diags = lint_program(&p);
        assert!(codes(&diags).contains(&"A003"), "{diags:?}");
    }

    #[test]
    fn a004_fires_on_type_mismatch() {
        let mut p = clean_program();
        let f = p.regs.alloc(ir::Type::F32);
        let i = p.regs.alloc(ir::Type::I32);
        let d = p.regs.alloc(ir::Type::F32);
        p.body.push(Stmt::Op(ir::Op::new(
            Opcode::Const,
            Some(f),
            vec![ir::Imm::F(0.0).into()],
        )));
        p.body.push(Stmt::Op(ir::Op::new(
            Opcode::Const,
            Some(i),
            vec![ir::Imm::I(0).into()],
        )));
        p.body.push(Stmt::Op(ir::Op::new(
            Opcode::FAdd,
            Some(d),
            vec![f.into(), i.into()],
        )));
        let diags = lint_program(&p);
        assert!(codes(&diags).contains(&"A004"), "{diags:?}");
        assert_eq!(
            crate::diag::max_severity(&diags),
            Some(crate::diag::Severity::Error)
        );
    }

    #[test]
    fn a201_fires_on_unknown_memref() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("a", 8);
        b.for_counted(TripCount::Const(8), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), ir::MemRef::unknown(a));
            b.store(addr.into(), x.into(), ir::MemRef::affine(a, 1, 0));
        });
        let diags = lint_program(&b.finish());
        assert!(codes(&diags).contains(&"A201"), "{diags:?}");
    }
}
