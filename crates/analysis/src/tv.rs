//! Translation validation: a symbolic equivalence checker over
//! (source program, emitted pipelined code) pairs — the A6xx pass
//! family. See DESIGN.md §16 for the full scheme.
//!
//! The validator runs both sides through the shared symbolic engines in
//! [`swp::symex`] — the sequential reference semantics for the
//! [`ir::Program`], the cycle-accurate VLIW timing contract for the
//! emitted code — over **symbolic data**: every initial memory cell,
//! input element and preset float register is an opaque leaf term, so
//! one run proves equivalence for *all* data values. Integer state
//! (addresses, trip counts) stays concrete so control flow resolves.
//!
//! * **Constant-trip programs** (the whole built-in corpus): the trip
//!   count is part of the program, so a single symbolic run *is* a
//!   complete proof → [`TvVerdict::Proved`] / A601.
//! * **Runtime-trip programs** (one top-level `TripCount::Reg` loop):
//!   equivalence is discharged by induction — a base battery of
//!   concrete trips covering every prologue/epilogue-only shape, every
//!   remainder residue mod the unroll degree, and P+1 kernel passes;
//!   plus uniformity obligations over the kernel-entry snapshots (a
//!   synthesized *stage invariant* mapping each kernel register to a
//!   fixed source site at an iteration index advancing by a constant
//!   shift per pass, affine store-address progression under
//!   `ir::alias_with_trip`'s sign convention, constant per-pass cycle
//!   counts) → A601 with `inducted`.
//! * Anything the engines or the normalizer cannot decide returns a
//!   structured [`TvVerdict::Abstained`] (A602) — never a false alarm.
//! * A symbolic disagreement is only reported as refuted (A603) after
//!   **concrete replay** confirms it: the refuting trip count is run
//!   through `vm::run_checked_compiled` with injective filler data and
//!   the first diverging memory cell / output value is attached to the
//!   diagnostic. A replay that *agrees* demotes the finding to an
//!   abstention (the normalizer was incomplete, not the compiler
//!   wrong).

use ir::{Interp, Program, Stmt, TripCount, Value, VReg};
use machine::MachineDescription;
use swp::symex::{
    affine_fit, run_source, run_vliw, EntrySnapshot, SVal, SourceRun, SymEnv, SymStop, Term,
    TermId, TermPool, VliwRun, VliwStore,
};
use swp::CompiledProgram;
use vm::{run_checked_compiled, CheckError, RunInput, Vm};

use crate::diag::{Diagnostic, LintCode};

/// Knobs for the validator.
#[derive(Debug, Clone)]
pub struct TvOptions {
    /// Symbolic fuel per execution (ops/words).
    pub fuel: u64,
    /// Cap on the induction window P (passes examined beyond base).
    pub max_window: u32,
}

impl Default for TvOptions {
    fn default() -> Self {
        TvOptions {
            fuel: 1 << 24,
            max_window: 4,
        }
    }
}

/// The validator's verdict for one (program, compiled) pair.
#[derive(Debug, Clone, PartialEq)]
pub enum TvVerdict {
    /// Equivalence proved for all data (and, when `inducted`, for all
    /// trip counts of the runtime-trip loop).
    Proved {
        /// Concrete trip counts symbolically checked (1 for const-trip
        /// programs — the trip is part of the program).
        trips_checked: usize,
        /// True when the inductive step (stage invariant + uniformity)
        /// was discharged for a runtime trip count.
        inducted: bool,
        /// True when the proof needed the reference input's concrete
        /// data (data-dependent addressing): the term-level equivalence
        /// then holds for that data, not all data.
        specialized: bool,
    },
    /// An obligation could not be discharged; nothing is claimed.
    Abstained {
        /// The obligation that failed (stable, machine-matchable).
        obligation: String,
        /// Why, in one sentence.
        reason: String,
    },
    /// Equivalence refuted, confirmed by concrete replay.
    Refuted {
        /// The counterexample trip count (for const-trip programs, the
        /// program's own trip).
        trip: i64,
        /// Replay evidence: first diverging memory cell / output value
        /// or the simulator fault, with both sides' concrete values.
        evidence: Vec<String>,
    },
}

impl TvVerdict {
    /// Stable one-word token (`proved` / `abstained` / `refuted`) for
    /// report columns.
    pub fn token(&self) -> &'static str {
        match self {
            TvVerdict::Proved { .. } => "proved",
            TvVerdict::Abstained { .. } => "abstained",
            TvVerdict::Refuted { .. } => "refuted",
        }
    }
}

/// A verdict plus its rendered diagnostic.
#[derive(Debug, Clone)]
pub struct TvOutcome {
    /// The structured verdict.
    pub verdict: TvVerdict,
    /// The A601/A602/A603 diagnostic carrying the same information.
    pub diagnostic: Diagnostic,
}

/// Validates that `compiled` computes `program` — the public entry
/// point. `input` supplies concrete integer presets (runtime trip
/// counts and other integer scalars); float presets are generalized to
/// symbolic leaves, so the proof covers all data regardless of the
/// input's contents.
pub fn validate_compiled(
    program: &Program,
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    input: Option<&RunInput>,
    opts: &TvOptions,
) -> TvOutcome {
    let v = Validator {
        program,
        compiled,
        mach,
        input,
        opts,
    };
    let verdict = v.run();
    let diagnostic = diagnostic_for(&program.name, &verdict);
    TvOutcome { verdict, diagnostic }
}

/// Renders a verdict as its A6xx diagnostic.
pub fn diagnostic_for(name: &str, verdict: &TvVerdict) -> Diagnostic {
    match verdict {
        TvVerdict::Proved {
            trips_checked,
            inducted,
            specialized,
        } => {
            let mut d = Diagnostic::new(
                LintCode::TvProved,
                format!("'{name}': emitted pipelined code proved equivalent to the source program"),
            );
            d = if *specialized {
                d.with_note(format!(
                    "data-dependent addressing: proof specialized to the reference input's \
                     concrete data at {trips_checked} trip count(s), term-level (stronger than \
                     a bitwise run, weaker than all-data)"
                ))
            } else {
                d.with_note(format!(
                    "symbolic execution over fully symbolic data at {trips_checked} trip count(s)"
                ))
            };
            if *inducted {
                d = d.with_note(
                    "runtime trip count generalized by induction (stage invariant + affine \
                     store progression + constant pass length)",
                );
            }
            d
        }
        TvVerdict::Abstained { obligation, reason } => Diagnostic::new(
            LintCode::TvAbstained,
            format!("'{name}': validation abstained on obligation `{obligation}`"),
        )
        .with_note(reason.clone()),
        TvVerdict::Refuted { trip, evidence } => {
            let mut d = Diagnostic::new(
                LintCode::TvRefuted,
                format!("'{name}': emitted code REFUTED against the source at trip count {trip}"),
            );
            for e in evidence {
                d = d.with_note(e.clone());
            }
            d
        }
    }
}

/// Where the runtime trip registers sit in the program.
enum TripShape {
    /// No `TripCount::Reg` anywhere: the program is its own trip.
    AllConst,
    /// Exactly one runtime-trip loop, at top level, and it is the only
    /// loop in the program: induction applies.
    SingleTop(VReg),
    /// Anything else: validated only at supplied presets.
    Other(Vec<VReg>),
}

fn trip_shape(program: &Program) -> TripShape {
    fn walk(stmts: &[Stmt], top: bool, loops: &mut u32, regs: &mut Vec<(VReg, bool)>) {
        for s in stmts {
            match s {
                Stmt::Op(_) => {}
                Stmt::Loop(l) => {
                    *loops += 1;
                    if let TripCount::Reg(r) = l.trip {
                        regs.push((r, top));
                    }
                    walk(&l.body, false, loops, regs);
                }
                Stmt::If(i) => {
                    walk(&i.then_body, false, loops, regs);
                    walk(&i.else_body, false, loops, regs);
                }
            }
        }
    }
    let mut loops = 0;
    let mut regs = Vec::new();
    walk(&program.body, true, &mut loops, &mut regs);
    match regs.as_slice() {
        [] => TripShape::AllConst,
        [(r, true)] if loops == 1 => TripShape::SingleTop(*r),
        _ => TripShape::Other(regs.iter().map(|&(r, _)| r).collect()),
    }
}

/// First top-level const trip, for refutation reporting on const-trip
/// programs.
fn first_const_trip(program: &Program) -> i64 {
    for s in &program.body {
        if let Stmt::Loop(l) = s {
            if let TripCount::Const(n) = l.trip {
                return n as i64;
            }
        }
    }
    0
}

enum Compare {
    Agree(Box<(SourceRun, VliwRun, TermPool)>),
    Disagree { what: String, src: String, emit: String },
    SourceStop(SymStop),
    EmitStop(SymStop),
}

struct Validator<'a> {
    program: &'a Program,
    compiled: &'a CompiledProgram,
    mach: &'a MachineDescription,
    input: Option<&'a RunInput>,
    opts: &'a TvOptions,
}

impl Validator<'_> {
    fn run(&self) -> TvVerdict {
        match trip_shape(self.program) {
            TripShape::AllConst => self.check_fixed_control(),
            TripShape::SingleTop(trip_reg) => self.induct(trip_reg),
            TripShape::Other(regs) => self.check_other(&regs),
        }
    }

    /// Complete-proof path for programs whose control flow is fixed by
    /// the program itself: const trips, or trip registers the program
    /// computes from concrete integer state. One symbolic run proves
    /// equivalence for all data. When symbolic addressing is out of
    /// reach (data-dependent gather/scatter), falls back to the
    /// reference input's concrete data — the proof is then specialized
    /// and the verdict says so.
    fn check_fixed_control(&self) -> TvVerdict {
        let report_trip = first_const_trip(self.program);
        let first = match self.check_at(None, &SymEnv::symbolic()) {
            Compare::Agree(_) => {
                return TvVerdict::Proved {
                    trips_checked: 1,
                    inducted: false,
                    specialized: false,
                }
            }
            other => other,
        };
        if wants_concrete(&first) {
            if let Some(env) = self.concrete_env() {
                return match self.check_at(None, &env) {
                    Compare::Agree(_) => TvVerdict::Proved {
                        trips_checked: 1,
                        inducted: false,
                        specialized: true,
                    },
                    other => self.settle(other, None, report_trip),
                };
            }
        }
        self.settle(first, None, report_trip)
    }

    /// Concrete data environment from the supplied reference input,
    /// memory zero-extended to the program's data size.
    fn concrete_env(&self) -> Option<SymEnv> {
        let input = self.input?;
        let mut mem = input.mem.clone();
        mem.resize(self.program.mem_size as usize, 0.0);
        Some(SymEnv {
            mem: Some(mem),
            input: [Some(input.input.clone()), Some(input.input_y.clone())],
        })
    }

    /// Presets for a symbolic run: concrete integers stay concrete
    /// (control flow needs them), floats generalize to symbolic leaves.
    /// `trip` overrides the runtime trip register.
    fn presets(&self, pool: &mut TermPool, trip: Option<(VReg, i32)>) -> Vec<(VReg, SVal)> {
        let mut out = Vec::new();
        if let Some(input) = self.input {
            for &(r, v) in &input.regs {
                if matches!(trip, Some((tr, _)) if tr == r) {
                    continue;
                }
                match v {
                    Value::I(i) => out.push((r, SVal::T(pool.iconst(i)))),
                    Value::F(_) => out.push((r, SVal::T(pool.intern(Term::RegInit(r))))),
                    Value::Undef => {}
                }
            }
        }
        if let Some((r, t)) = trip {
            out.push((r, SVal::T(pool.iconst(t))));
        }
        out
    }

    /// One symbolic run of both sides at the given trip, compared on
    /// observable effects (memory, output queues, input consumption —
    /// exactly the state `vm::run_checked*` compares).
    fn check_at(&self, trip: Option<(VReg, i32)>, env: &SymEnv) -> Compare {
        let mut pool = TermPool::new();
        let presets = self.presets(&mut pool, trip);
        let src = match run_source(self.program, &presets, env, &mut pool, self.opts.fuel) {
            Ok(r) => r,
            Err(e) => return Compare::SourceStop(e),
        };
        let emit = match run_vliw(
            &self.compiled.vliw,
            self.mach,
            &presets,
            env,
            &mut pool,
            self.opts.fuel,
        ) {
            Ok(r) => r,
            Err(e) => return Compare::EmitStop(e),
        };
        if src.effects.popped != emit.effects.popped {
            return Compare::Disagree {
                what: "input consumption".into(),
                src: format!("{:?}", src.effects.popped),
                emit: format!("{:?}", emit.effects.popped),
            };
        }
        for ch in 0..2 {
            let (a, b) = (&src.effects.out[ch], &emit.effects.out[ch]);
            if a.len() != b.len() {
                return Compare::Disagree {
                    what: format!("output[{ch}] length"),
                    src: a.len().to_string(),
                    emit: b.len().to_string(),
                };
            }
            for i in 0..a.len() {
                if a[i] != b[i] {
                    return Compare::Disagree {
                        what: format!("output[{ch}][{i}]"),
                        src: pool.render(a[i]),
                        emit: pool.render(b[i]),
                    };
                }
            }
        }
        let keys: Vec<u32> = src
            .effects
            .mem
            .keys()
            .chain(emit.effects.mem.keys())
            .copied()
            .collect();
        for addr in keys {
            let init = env.mem_leaf(&mut pool, addr);
            let a = src.effects.mem.get(&addr).copied().unwrap_or(init);
            let b = emit.effects.mem.get(&addr).copied().unwrap_or(init);
            if a != b {
                return Compare::Disagree {
                    what: format!("mem[{addr}]"),
                    src: pool.render(a),
                    emit: pool.render(b),
                };
            }
        }
        Compare::Agree(Box::new((src, emit, pool)))
    }

    /// Resolves a non-agreeing comparison: emitted-side faults and
    /// disagreements go to concrete replay; source faults and engine
    /// limitations abstain.
    fn settle(&self, cmp: Compare, trip: Option<(VReg, i32)>, report_trip: i64) -> TvVerdict {
        match cmp {
            Compare::Agree(_) => unreachable!("settle called on agreement"),
            Compare::SourceStop(s) => TvVerdict::Abstained {
                obligation: format!("source execution: {}", s.obligation),
                reason: s.reason,
            },
            Compare::EmitStop(s) if !s.fault => TvVerdict::Abstained {
                obligation: format!("emitted execution: {}", s.obligation),
                reason: s.reason,
            },
            Compare::EmitStop(s) => {
                // The emitted code would fault dynamically — refutation
                // material, pending concrete confirmation.
                self.replay(trip, report_trip, format!("symbolic fault: {}", s.reason))
            }
            Compare::Disagree { what, src, emit } => self.replay(
                trip,
                report_trip,
                format!("symbolic divergence at {what}: source {src}, emitted {emit}"),
            ),
        }
    }

    /// Concrete replay of a candidate refutation through the repo's
    /// end-to-end oracle. Injective filler data maximizes the chance a
    /// genuine divergence shows concretely; if the oracle still agrees,
    /// the symbolic finding was normalizer incompleteness → abstain.
    fn replay(&self, trip: Option<(VReg, i32)>, report_trip: i64, symbolic: String) -> TvVerdict {
        let ri = self.replay_input(trip);
        match run_checked_compiled(self.program, self.compiled, self.mach, &ri) {
            Ok(_) => TvVerdict::Abstained {
                obligation: "refutation replay".into(),
                reason: format!(
                    "{symbolic}; concrete replay at trip {report_trip} agrees — normalizer \
                     incomplete, not a compiler bug"
                ),
            },
            Err(CheckError::Mismatch(m)) => TvVerdict::Refuted {
                trip: report_trip,
                evidence: vec![symbolic, format!("replay divergence: {m}")],
            },
            Err(CheckError::Vm(e)) => TvVerdict::Refuted {
                trip: report_trip,
                evidence: vec![symbolic, format!("replay simulator fault: {e}")],
            },
            Err(CheckError::Illegal(vs)) => {
                // The static verifier rejected the schedule before the
                // dynamic comparison ran. Bypass it: a mutant caught
                // statically must still show its dynamic divergence.
                match self.dyn_diverge(&ri) {
                    Some(ev) => TvVerdict::Refuted {
                        trip: report_trip,
                        evidence: vec![symbolic, ev],
                    },
                    None => TvVerdict::Abstained {
                        obligation: "refutation replay".into(),
                        reason: format!(
                            "{symbolic}; schedule statically illegal ({} violation(s)) but \
                             dynamically agreeing at trip {report_trip}",
                            vs.len()
                        ),
                    },
                }
            }
            Err(CheckError::Reference(e)) => TvVerdict::Abstained {
                obligation: "refutation replay".into(),
                reason: format!("source program faults concretely: {e}"),
            },
            Err(CheckError::Compile(e)) => TvVerdict::Abstained {
                obligation: "refutation replay".into(),
                reason: format!("unexpected compile error during replay: {e}"),
            },
        }
    }

    /// Concrete run input with injective filler: every memory cell and
    /// input element gets a distinct value, so any misrouted address or
    /// dropped element shows as a bitwise difference.
    fn replay_input(&self, trip: Option<(VReg, i32)>) -> RunInput {
        let mem_size = self.program.mem_size as usize;
        let mem: Vec<f32> = (0..mem_size).map(|i| 1.0 + i as f32 * 0.001953125).collect();
        // Generous input queues (the symbolic run tells us consumption
        // only on agreement; refutations may consume more).
        let need = 4 * mem_size.max(64) + 1024;
        let input: Vec<f32> = (0..need).map(|i| 2.0 + i as f32 * 0.0009765625).collect();
        let input_y: Vec<f32> = (0..need).map(|i| 3.0 + i as f32 * 0.0009765625).collect();
        let mut regs: Vec<(VReg, Value)> = Vec::new();
        if let Some(orig) = self.input {
            for &(r, v) in &orig.regs {
                if matches!(trip, Some((tr, _)) if tr == r) {
                    continue;
                }
                regs.push((r, v));
            }
        }
        if let Some((r, t)) = trip {
            regs.push((r, Value::I(t)));
        }
        RunInput {
            mem,
            input,
            input_y,
            regs,
        }
    }

    /// Direct interpreter-vs-simulator comparison, bypassing the static
    /// verifier. Returns the first divergence, or `None` on agreement.
    fn dyn_diverge(&self, ri: &RunInput) -> Option<String> {
        let mut interp = Interp::new(self.program);
        for (i, v) in ri.mem.iter().enumerate() {
            if i < interp.mem.len() {
                interp.mem[i] = *v;
            }
        }
        interp.input.extend(ri.input.iter().copied());
        interp.input_y.extend(ri.input_y.iter().copied());
        for &(r, v) in &ri.regs {
            interp.set_reg(r, v);
        }
        if interp.run(self.program).is_err() {
            return None; // source faults: cannot indict the emitted code
        }
        let mut vm = Vm::new(&self.compiled.vliw, self.mach);
        for (i, v) in ri.mem.iter().enumerate() {
            if i < vm.mem.len() {
                vm.mem[i] = *v;
            }
        }
        vm.input.extend(ri.input.iter().copied());
        vm.input_y.extend(ri.input_y.iter().copied());
        for &(r, v) in &ri.regs {
            vm.set_reg(r, v);
        }
        if let Err(e) = vm.run() {
            return Some(format!("replay simulator fault (verifier bypassed): {e}"));
        }
        for (i, (a, b)) in interp.mem.iter().zip(&vm.mem).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(format!(
                    "replay divergence (verifier bypassed): memory[{i}]: reference {a}, \
                     simulator {b}"
                ));
            }
        }
        if interp.output.len() != vm.output.len() {
            return Some(format!(
                "replay divergence (verifier bypassed): output lengths {} vs {}",
                interp.output.len(),
                vm.output.len()
            ));
        }
        for (i, (a, b)) in interp.output.iter().zip(&vm.output).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(format!(
                    "replay divergence (verifier bypassed): output[{i}]: reference {a}, \
                     simulator {b}"
                ));
            }
        }
        if interp.output_y != vm.output_y {
            return Some("replay divergence (verifier bypassed): Y output queues differ".into());
        }
        None
    }

    /// Induction for a single top-level runtime-trip loop: base battery
    /// plus uniformity obligations over the largest run's loop-header
    /// snapshots.
    fn induct(&self, trip_reg: VReg) -> TvVerdict {
        // Pipeline shape: k dead iterations in flight, unroll u.
        let (k, u) = self
            .compiled
            .reports
            .first()
            .map(|r| {
                if r.ii.is_some() {
                    (r.stages.saturating_sub(1), r.unroll.max(1))
                } else {
                    (0, 1)
                }
            })
            .unwrap_or((0, 1));
        // Dependence window: deepest loop-carried memory distance.
        let d = self
            .compiled
            .artifacts
            .first()
            .map(|a| {
                a.graph
                    .edges()
                    .iter()
                    .filter(|e| matches!(e.kind, swp::DepKind::Memory))
                    .map(|e| e.omega)
                    .max()
                    .unwrap_or(1)
            })
            .unwrap_or(1);
        let p = (d + 1).clamp(3, self.opts.max_window.max(3));
        // Base battery: every trip from 0 (no iteration at all) through
        // k + u*(p+1) + (u-1) — covers all prologue/epilogue-only
        // shapes, every remainder residue mod u, and p+1 kernel passes.
        let t_max = (k + u * (p + 1) + (u - 1)) as i32;
        let t_prev = t_max - u as i32; // same residue, one pass fewer
        let mut last: Option<Box<(SourceRun, VliwRun, TermPool)>> = None;
        let mut prev: Option<Box<(SourceRun, VliwRun, TermPool)>> = None;
        let mut trips_checked = 0usize;
        let env = SymEnv::symbolic();
        for t in 0..=t_max {
            match self.check_at(Some((trip_reg, t)), &env) {
                Compare::Agree(data) => {
                    trips_checked += 1;
                    if t == t_max {
                        last = Some(data);
                    } else if t == t_prev {
                        prev = Some(data);
                    }
                }
                other => return self.settle(other, Some((trip_reg, t)), t as i64),
            }
        }
        let (src, emit, pool) = *last.expect("t_max ran");
        let prev_entries = prev.map(|b| b.1.entries).unwrap_or_default();
        if src.forked || emit.forked {
            return TvVerdict::Abstained {
                obligation: "induction".into(),
                reason: "data-dependent control flow breaks per-pass snapshots; only the base \
                         battery was checked"
                    .into(),
            };
        }
        // Uniformity obligations, but only for loop headers whose entry
        // count grows with the trip: bounded loops (the < u-iteration
        // remainder) execute identically for every trip with the same
        // residue, which the battery covers exhaustively.
        for (label, snaps) in &emit.entries {
            let prev_count = prev_entries.get(label).map(|s| s.len()).unwrap_or(0);
            if snaps.len() == prev_count {
                continue;
            }
            if snaps.len() < 3 {
                return TvVerdict::Abstained {
                    obligation: format!("induction at `{label}`"),
                    reason: format!(
                        "trip-dependent loop header entered only {} time(s) at the largest \
                         base trip — not enough passes to witness an invariant",
                        snaps.len()
                    ),
                };
            }
            if let Err((obligation, reason)) = uniform_group(&pool, snaps, &emit.stores, &src) {
                return TvVerdict::Abstained {
                    obligation: format!("induction at `{label}`: {obligation}"),
                    reason,
                };
            }
        }
        TvVerdict::Proved {
            trips_checked,
            inducted: true,
            specialized: false,
        }
    }

    /// Trip shapes outside the induction scheme. The deciding question
    /// is where the runtime trip registers come from:
    ///
    /// * **None preset from outside** — the program computes every trip
    ///   register itself, from concrete integer state (only integer ops
    ///   fold, so the values cannot depend on symbolic data). Control
    ///   flow is therefore fixed and one symbolic run is a complete
    ///   proof — the triangular-nest case (Livermore 6).
    /// * **Some preset** — the trips parameterize the program from
    ///   outside: validate at the supplied presets, then abstain on
    ///   generalization.
    fn check_other(&self, regs: &[VReg]) -> TvVerdict {
        let preset = |r: &VReg| {
            self.input
                .map(|i| i.regs.iter().any(|&(pr, v)| pr == *r && matches!(v, Value::I(_))))
                .unwrap_or(false)
        };
        if !regs.iter().any(preset) {
            // If a trip register were in fact read before the program
            // writes it, the symbolic run reads Undef and abstains.
            return self.check_fixed_control();
        }
        match self.check_at(None, &SymEnv::symbolic()) {
            Compare::Agree(_) => TvVerdict::Abstained {
                obligation: "trip-count generalization".into(),
                reason: "equivalence holds at the supplied trip presets, but the loop shape \
                         (nested or multiple runtime-trip loops) is outside the induction \
                         scheme"
                    .into(),
            },
            other => self.settle(other, None, 0),
        }
    }
}

/// Abstentions that concrete data could resolve: a symbolic address
/// that did not fold (data-dependent gather/scatter).
fn wants_concrete(c: &Compare) -> bool {
    match c {
        Compare::SourceStop(s) | Compare::EmitStop(s) => {
            !s.fault && s.reason.contains("not concrete")
        }
        _ => false,
    }
}

/// Checks one loop-header group's uniformity obligations: constant
/// per-entry cycle count, equal-length store segments with per-position
/// affine address progression, and a stage invariant for the entry
/// registers (loop-invariant, affine integer, or a fixed source site at
/// an iteration index advancing by one common shift per entry).
fn uniform_group(
    pool: &TermPool,
    snaps: &[EntrySnapshot],
    stores: &[VliwStore],
    src: &SourceRun,
) -> Result<(), (String, String)> {
    // Constant cycle delta.
    let deltas: Vec<u64> = snaps.windows(2).map(|w| w[1].cycle - w[0].cycle).collect();
    if deltas.windows(2).any(|w| w[0] != w[1]) {
        return Err((
            "pass length".into(),
            format!("entry-to-entry cycle counts vary: {deltas:?}"),
        ));
    }
    // Store segments between consecutive entries: equal length, affine
    // addresses per position (`alias_with_trip` sign convention:
    // positive stride = later pass, higher address).
    let segs: Vec<&[VliwStore]> = snaps
        .windows(2)
        .map(|w| &stores[w[0].store_base..w[1].store_base])
        .collect();
    if segs.windows(2).any(|w| w[0].len() != w[1].len()) {
        return Err((
            "store count".into(),
            "passes commit different numbers of stores".into(),
        ));
    }
    if let Some(len) = segs.first().map(|s| s.len()) {
        for pos in 0..len {
            let addrs: Vec<i64> = segs.iter().map(|s| s[pos].addr as i64).collect();
            if affine_fit(&addrs).is_none() {
                return Err((
                    "store address affinity".into(),
                    format!("store #{pos} addresses are not affine across passes: {addrs:?}"),
                ));
            }
        }
    }
    // Stage invariant over entry registers.
    let nregs = snaps[0].regs.len();
    // Feasible shifts δ per varying symbolic register; all registers
    // must admit one common δ.
    let mut common: Option<Vec<u32>> = None;
    for i in 0..nregs {
        let vals: Vec<SVal> = snaps.iter().map(|s| s.regs[i]).collect();
        // A register may legitimately be undefined at the first
        // entries only (an MVE copy the prologue never reached): the
        // invariant is checked over the defined suffix. Defined →
        // undefined is never legitimate.
        let first_def = vals
            .iter()
            .position(|v| matches!(v, SVal::T(_)))
            .unwrap_or(vals.len());
        let suffix = &vals[first_def..];
        if suffix.is_empty() {
            continue; // never defined at any entry
        }
        if suffix.iter().any(|v| matches!(v, SVal::Undef)) {
            return Err((
                "stage invariant".into(),
                format!("register #{i} becomes undefined again after being defined"),
            ));
        }
        if suffix.len() < 2 {
            continue; // defined only at the last entry: no pattern to check
        }
        let terms: Vec<TermId> = suffix
            .iter()
            .map(|v| match v {
                SVal::T(t) => *t,
                SVal::Undef => unreachable!(),
            })
            .collect();
        if terms.windows(2).all(|w| w[0] == w[1]) {
            continue; // loop-invariant
        }
        if let Some(ints) = terms
            .iter()
            .map(|&t| pool.as_int(t).map(|v| v as i64))
            .collect::<Option<Vec<i64>>>()
        {
            if affine_fit(&ints).is_some() {
                continue; // affine integer (addresses, counters)
            }
            return Err((
                "stage invariant".into(),
                format!("integer register #{i} is not affine across passes: {ints:?}"),
            ));
        }
        // Varying symbolic value: must match a fixed source site with a
        // constant occurrence shift.
        let feasible = feasible_shifts(&terms, src);
        if feasible.is_empty() {
            return Err((
                "stage invariant".into(),
                format!(
                    "no source site explains register #{i} across passes (first pass value: {})",
                    pool.render(terms[0])
                ),
            ));
        }
        common = Some(match common {
            None => feasible,
            Some(c) => {
                let inter: Vec<u32> = c.into_iter().filter(|d| feasible.contains(d)).collect();
                if inter.is_empty() {
                    return Err((
                        "stage invariant".into(),
                        "registers disagree on the per-pass iteration shift".into(),
                    ));
                }
                inter
            }
        });
    }
    Ok(())
}

/// Shifts δ > 0 such that some source site s and base occurrence o
/// satisfy: the j-th entry's term was computed by s at occurrence
/// o + j·δ, for every entry j.
fn feasible_shifts(terms: &[TermId], src: &SourceRun) -> Vec<u32> {
    let empty: Vec<(u32, u32)> = Vec::new();
    let cands: Vec<&Vec<(u32, u32)>> = terms
        .iter()
        .map(|t| src.values.get(t).unwrap_or(&empty))
        .collect();
    let mut shifts = Vec::new();
    for &(site, o0) in cands[0] {
        for &(s1, o1) in cands[1] {
            if s1 != site || o1 <= o0 {
                continue;
            }
            let d = o1 - o0;
            let ok = (2..terms.len()).all(|j| {
                cands[j]
                    .iter()
                    .any(|&(sj, oj)| sj == site && oj == o0 + j as u32 * d)
            });
            if ok && !shifts.contains(&d) {
                shifts.push(d);
            }
        }
    }
    shifts
}

/// Program-level verdicts for a whole compiled corpus entry, keyed for
/// report columns — convenience wrapper used by the `tv` binary and
/// batch report.
pub fn tv_token(
    program: &Program,
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    input: Option<&RunInput>,
) -> (&'static str, TvOutcome) {
    let out = validate_compiled(program, compiled, mach, input, &TvOptions::default());
    (out.verdict.token(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{MemRef, ProgramBuilder, Type};
    use machine::presets::{toy_vector, warp_cell};
    use swp::CompileOptions;

    fn vinc_const(n: u32) -> Program {
        let mut b = ProgramBuilder::new("vinc");
        let a = b.array("a", 64.max(n));
        b.for_counted(TripCount::Const(n), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), MemRef::affine(a, 1, 0));
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), MemRef::affine(a, 1, 0));
        });
        b.finish()
    }

    fn vinc_reg() -> (Program, VReg) {
        let mut b = ProgramBuilder::new("vinc_rt");
        let a = b.array("a", 256);
        let n = b.reg(Type::I32);
        b.for_counted(TripCount::Reg(n), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), MemRef::affine(a, 1, 0));
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), MemRef::affine(a, 1, 0));
        });
        (b.finish(), n)
    }

    #[test]
    fn const_trip_proves() {
        let p = vinc_const(64);
        let m = warp_cell();
        let c = swp::compile(&p, &m, &CompileOptions::default()).unwrap();
        let out = validate_compiled(&p, &c, &m, None, &TvOptions::default());
        assert_eq!(
            out.verdict,
            TvVerdict::Proved {
                trips_checked: 1,
                inducted: false,
                specialized: false
            },
            "{}",
            out.diagnostic
        );
        assert_eq!(out.diagnostic.code, LintCode::TvProved);
    }

    #[test]
    fn runtime_trip_proves_by_induction() {
        let (p, _) = vinc_reg();
        for m in [warp_cell(), toy_vector()] {
            let c = swp::compile(&p, &m, &CompileOptions::default()).unwrap();
            let out = validate_compiled(&p, &c, &m, None, &TvOptions::default());
            match out.verdict {
                TvVerdict::Proved {
                    inducted,
                    trips_checked,
                    specialized,
                } => {
                    assert!(inducted && !specialized);
                    assert!(trips_checked >= 4);
                }
                ref v => panic!("expected induction proof, got {v:?}\n{}", out.diagnostic),
            }
        }
    }

    #[test]
    fn mutated_kernel_is_refuted_with_replay_evidence() {
        let p = vinc_const(64);
        let m = warp_cell();
        let mut c = swp::compile(&p, &m, &CompileOptions::default()).unwrap();
        // Seed a wrong-modulo-row bug: rotate the kernel's words.
        let kb = c
            .vliw
            .blocks
            .iter_mut()
            .find(|b| b.label.ends_with(".kernel"))
            .expect("kernel block");
        assert!(kb.words.len() > 1, "need a multi-word kernel to rotate");
        kb.words.rotate_left(1);
        let out = validate_compiled(&p, &c, &m, None, &TvOptions::default());
        match out.verdict {
            TvVerdict::Refuted { trip, ref evidence } => {
                assert_eq!(trip, 64);
                assert!(
                    evidence.iter().any(|e| e.contains("replay")),
                    "refutation must carry replay evidence: {evidence:?}"
                );
            }
            ref v => panic!("mutant must be refuted, got {v:?}"),
        }
        assert_eq!(out.diagnostic.code, LintCode::TvRefuted);
    }

    #[test]
    fn verdict_tokens_are_stable() {
        assert_eq!(
            TvVerdict::Proved {
                trips_checked: 1,
                inducted: false,
                specialized: false
            }
            .token(),
            "proved"
        );
        assert_eq!(
            TvVerdict::Abstained {
                obligation: "x".into(),
                reason: "y".into()
            }
            .token(),
            "abstained"
        );
        assert_eq!(
            TvVerdict::Refuted {
                trip: 3,
                evidence: vec![]
            }
            .token(),
            "refuted"
        );
    }
}
