//! The shared diagnostics infrastructure: lint codes, severities, and the
//! [`Diagnostic`] record with human-readable and JSON rendering.
//!
//! Codes are **stable**: once published in `docs/LINTS.md` a code keeps
//! its meaning forever (retired codes are never reused). Every diagnostic
//! carries a machine-readable code, a severity, an optional source span
//! (when the program came through the `frontend` and position information
//! survived), a one-line message, and free-form notes.

use std::fmt;

use frontend::Span;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: attribution and explanation, not a problem.
    Info,
    /// Suspicious but legal; worth a look.
    Warning,
    /// A real defect: the program, machine or schedule is broken.
    Error,
}

impl Severity {
    /// Lowercase name, as rendered in diagnostics and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable lint codes. The `A` prefix marks the analysis crate; the
/// hundreds digit groups codes by pass family (0xx IR, 1xx machine,
/// 2xx dependence graph, 3xx schedule, 4xx driver and memory audit,
/// 5xx schedule-cache service, 6xx translation validation, 7xx abstract
/// interpretation and certified refutation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// A register may be read before any definition reaches it (in
    /// particular on the first loop iteration, when only a later
    /// definition in the same body exists).
    UninitializedRead,
    /// A register is allocated but never referenced by any operation.
    UnusedRegister,
    /// An operation computes a value nothing ever reads.
    DeadOp,
    /// An operand or destination type does not match its opcode.
    TypeError,
    /// An operation class has no functional-unit reservation: infinitely
    /// many such ops could issue per cycle.
    FreeOpClass,
    /// A declared resource is used by no operation class and is not the
    /// branch resource.
    UnreferencedResource,
    /// A node's reservation demands a resource the machine has zero units
    /// of: no initiation interval exists.
    ZeroCapacityDemanded,
    /// An unanalyzable memory reference forces worst-case loop-carried
    /// dependence edges.
    UnknownMemRef,
    /// Dependence edges whose constraints are strictly implied by other
    /// paths (prunable without changing the schedulable set).
    DominatedEdges,
    /// Names the critical recurrence cycle(s) binding RecMII.
    RecMiiAttribution,
    /// The exact-II oracle certifies the heuristic's schedule is not
    /// optimal: a smaller initiation interval is feasible for this
    /// dependence graph on this machine.
    OptimalityGap,
    /// The feedback-guided refiner recovered cycles the one-shot
    /// heuristic left on the table: attributes the closed gap to the
    /// winning perturbation (or witness replay).
    RefineAttribution,
    /// Register pressure exceeds a machine register file.
    RegisterPressure,
    /// Operations with zero slack: moving any of them breaks the schedule.
    ZeroSlack,
    /// The resource(s) saturated at the achieved initiation interval.
    BottleneckResource,
    /// The compiler rejected the program outright.
    CompileFailure,
    /// Per-loop memory-dependence classification summary: how many memory
    /// edges are exact, bounded, or conservative.
    MemDepClassification,
    /// A conservative memory edge the exact distance tests refute when
    /// given the loop's trip count: it constrains the schedule but
    /// provably corresponds to no real dependence.
    RefutableMemEdge,
    /// Conservative memory edges raise the II bound: reports the MII gap
    /// between the graph as built and the graph with conservative edges
    /// dropped (report-only; never fed back to codegen).
    ConservativeIiGap,
    /// A dependence observed in a dynamic memory trace is not covered by
    /// any static edge with a small-enough iteration distance: the
    /// dependence graph is unsound.
    MemDepViolation,
    /// A static memory edge no dynamic trace ever exercised — precision
    /// telemetry, not a defect (the input may simply not reach it).
    UnobservedMemEdge,
    /// The schedule cache served bytes that differ from a fresh compile
    /// of the same request: the daemon's standing byte-identity
    /// invariant (cached ≡ freshly compiled) is violated.
    CacheRevalidationFailure,
    /// Schedule-cache behaviour summary: hit rate, near-misses from
    /// isomorphic relabelings, occupancy, and eviction pressure.
    CacheSummary,
    /// The translation validator proved the emitted pipelined code
    /// equivalent to the source loop (for all data, and — for runtime
    /// trip counts — for all trips, by induction).
    TvProved,
    /// The translation validator could not discharge an obligation and
    /// abstained; the diagnostic names the obligation and the reason.
    TvAbstained,
    /// The translation validator refuted equivalence with a concrete
    /// counterexample trip count, confirmed by replay under the
    /// reference interpreter and the cycle-accurate simulator.
    TvRefuted,
    /// What the abstract interpreter derived for a loop compiled under
    /// `absint_refute`: recovered affine address forms, recognized
    /// induction variables, and how many imprecise memory edges its
    /// certificates closed.
    AbsintAttribution,
    /// Certified refutation lowered the loop's recurrence bound: reports
    /// the RecMII before and after the certified edges were dropped.
    AbsintIiImprovement,
    /// The independent certificate checker rejected a certificate the
    /// analysis proposed: the edge was conservatively kept, but the
    /// analysis and the checker disagree — one of them is wrong.
    AbsintCertFailure,
}

impl LintCode {
    /// The stable code string, e.g. `"A001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UninitializedRead => "A001",
            LintCode::UnusedRegister => "A002",
            LintCode::DeadOp => "A003",
            LintCode::TypeError => "A004",
            LintCode::FreeOpClass => "A101",
            LintCode::UnreferencedResource => "A102",
            LintCode::ZeroCapacityDemanded => "A103",
            LintCode::UnknownMemRef => "A201",
            LintCode::DominatedEdges => "A202",
            LintCode::RecMiiAttribution => "A203",
            LintCode::OptimalityGap => "A204",
            LintCode::RefineAttribution => "A205",
            LintCode::RegisterPressure => "A301",
            LintCode::ZeroSlack => "A302",
            LintCode::BottleneckResource => "A303",
            LintCode::CompileFailure => "A401",
            LintCode::MemDepClassification => "A402",
            LintCode::RefutableMemEdge => "A403",
            LintCode::ConservativeIiGap => "A404",
            LintCode::MemDepViolation => "A405",
            LintCode::UnobservedMemEdge => "A406",
            LintCode::CacheRevalidationFailure => "A501",
            LintCode::CacheSummary => "A502",
            LintCode::TvProved => "A601",
            LintCode::TvAbstained => "A602",
            LintCode::TvRefuted => "A603",
            LintCode::AbsintAttribution => "A701",
            LintCode::AbsintIiImprovement => "A702",
            LintCode::AbsintCertFailure => "A703",
        }
    }

    /// Every published code, in code order — the docs drift test walks
    /// this to keep `docs/LINTS.md` and the registry in lockstep. Keep
    /// in sync with [`LintCode::as_str`] (the compiler's exhaustiveness
    /// check on that match is the real registry; this is its iterable
    /// projection).
    pub const ALL: &'static [LintCode] = &[
        LintCode::UninitializedRead,
        LintCode::UnusedRegister,
        LintCode::DeadOp,
        LintCode::TypeError,
        LintCode::FreeOpClass,
        LintCode::UnreferencedResource,
        LintCode::ZeroCapacityDemanded,
        LintCode::UnknownMemRef,
        LintCode::DominatedEdges,
        LintCode::RecMiiAttribution,
        LintCode::OptimalityGap,
        LintCode::RefineAttribution,
        LintCode::RegisterPressure,
        LintCode::ZeroSlack,
        LintCode::BottleneckResource,
        LintCode::CompileFailure,
        LintCode::MemDepClassification,
        LintCode::RefutableMemEdge,
        LintCode::ConservativeIiGap,
        LintCode::MemDepViolation,
        LintCode::UnobservedMemEdge,
        LintCode::CacheRevalidationFailure,
        LintCode::CacheSummary,
        LintCode::TvProved,
        LintCode::TvAbstained,
        LintCode::TvRefuted,
        LintCode::AbsintAttribution,
        LintCode::AbsintIiImprovement,
        LintCode::AbsintCertFailure,
    ];

    /// The code's default severity.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::TypeError
            | LintCode::ZeroCapacityDemanded
            | LintCode::RegisterPressure
            | LintCode::CompileFailure
            | LintCode::MemDepViolation
            | LintCode::CacheRevalidationFailure
            | LintCode::TvRefuted
            | LintCode::AbsintCertFailure => Severity::Error,
            LintCode::UninitializedRead
            | LintCode::UnusedRegister
            | LintCode::DeadOp
            | LintCode::FreeOpClass
            | LintCode::UnknownMemRef
            | LintCode::RefutableMemEdge
            | LintCode::OptimalityGap
            | LintCode::TvAbstained => Severity::Warning,
            LintCode::UnreferencedResource
            | LintCode::DominatedEdges
            | LintCode::RecMiiAttribution
            | LintCode::RefineAttribution
            | LintCode::ZeroSlack
            | LintCode::BottleneckResource
            | LintCode::MemDepClassification
            | LintCode::ConservativeIiGap
            | LintCode::UnobservedMemEdge
            | LintCode::CacheSummary
            | LintCode::TvProved
            | LintCode::AbsintAttribution
            | LintCode::AbsintIiImprovement => Severity::Info,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Severity (defaults to [`LintCode::severity`]).
    pub severity: Severity,
    /// Source range, when known (programs lowered by the `frontend` may
    /// carry positions; IR built programmatically has none).
    pub span: Option<Span>,
    /// One-line description.
    pub message: String,
    /// Supporting detail, one line each.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a source span (builder-style).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Appends a note (builder-style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// One diagnostic in JSON, e.g.
    /// `{"code":"A001","severity":"warning","span":null,"message":"…","notes":[]}`.
    pub fn to_json(&self) -> String {
        let span = match self.span {
            Some(s) => format!(
                "{{\"lo\":{{\"line\":{},\"col\":{}}},\"hi\":{{\"line\":{},\"col\":{}}}}}",
                s.lo.line, s.lo.col, s.hi.line, s.hi.col
            ),
            None => "null".to_string(),
        };
        let notes: Vec<String> = self.notes.iter().map(|n| json_string(n)).collect();
        format!(
            "{{\"code\":{},\"severity\":{},\"span\":{},\"message\":{},\"notes\":[{}]}}",
            json_string(self.code.as_str()),
            json_string(self.severity.as_str()),
            span,
            json_string(&self.message),
            notes.join(",")
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(s) = self.span {
            write!(f, " at {s}")?;
        }
        write!(f, ": {}", self.message)?;
        for n in &self.notes {
            write!(f, "\n  = note: {n}")?;
        }
        Ok(())
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a batch of diagnostics, one per line (notes indented).
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders a batch of diagnostics as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// The highest severity present, or `None` for an empty batch.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::Pos;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(LintCode::UninitializedRead.as_str(), "A001");
        assert_eq!(LintCode::ZeroCapacityDemanded.as_str(), "A103");
        assert_eq!(LintCode::RegisterPressure.as_str(), "A301");
        assert_eq!(LintCode::CompileFailure.as_str(), "A401");
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(
            max_severity(&[
                Diagnostic::new(LintCode::DominatedEdges, "x"),
                Diagnostic::new(LintCode::TypeError, "y"),
            ]),
            Some(Severity::Error)
        );
        assert_eq!(max_severity(&[]), None);
    }

    #[test]
    fn human_rendering() {
        let d = Diagnostic::new(LintCode::UnknownMemRef, "load has no MemRef")
            .with_note("forces omega edges at all distances");
        let s = d.to_string();
        assert!(s.starts_with("warning[A201]: load has no MemRef"), "{s}");
        assert!(s.contains("= note: forces"), "{s}");
    }

    #[test]
    fn span_rendering() {
        let d = Diagnostic::new(LintCode::TypeError, "bad").with_span(Span::point(Pos {
            line: 3,
            col: 7,
        }));
        assert!(d.to_string().contains("at 3:7:"), "{d}");
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new(LintCode::DeadOp, "dst \"v1\"\nnever read");
        let j = d.to_json();
        assert!(j.contains("\"code\":\"A003\""), "{j}");
        assert!(j.contains("\\\"v1\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("\"span\":null"), "{j}");
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'), "{arr}");
        assert_eq!(arr.matches("\"A003\"").count(), 2, "{arr}");
    }

    #[test]
    fn json_span_is_structured() {
        let d = Diagnostic::new(LintCode::TypeError, "bad").with_span(Span {
            lo: Pos { line: 1, col: 2 },
            hi: Pos { line: 1, col: 9 },
        });
        let j = d.to_json();
        assert!(j.contains("\"span\":{\"lo\":{\"line\":1,\"col\":2}"), "{j}");
    }
}
