//! Schedule diagnostics: register pressure (A301), per-op slack / critical
//! path (A302), resource-bottleneck attribution (A303), exact-II
//! optimality-gap attribution (A204), feedback-guided refinement
//! attribution (A205), and abstract-interpretation refutation attribution
//! (A701–A703).

use machine::MachineDescription;
use swp::optimal::{certify, OracleOptions, OracleOutcome};
use swp::{DepGraph, NodeKind, PressureReport, Schedule};

use crate::diag::{Diagnostic, LintCode};

/// Cap on per-op note lines attached to one diagnostic.
const MAX_NOTES: usize = 8;

/// A resource is reported as the bottleneck when its steady-state
/// utilization is at least this percentage of capacity
/// ([`swp::viz::utilization`] reports percent).
const BOTTLENECK_THRESHOLD: f64 = 99.9;

/// Branch-and-bound node budget for the A204 lint. Lint runs sit on the
/// interactive path (`bench --bin lint`, batch reports), so this stays
/// well below the dedicated sweep's default; corpus loops close within
/// a few hundred nodes.
const OPTIMALITY_BUDGET: u64 = 50_000;

/// Runs every schedule lint for a single pipelined loop.
pub fn lint_schedule(g: &DepGraph, sched: &Schedule, mach: &MachineDescription) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(slack_lint(g, sched));
    diags.extend(bottleneck_lint(g, sched, mach));
    diags.extend(optimality_lint(g, sched, mach));
    diags
}

/// A204: the heuristic left cycles on the table. Runs the exact oracle
/// ([`swp::optimal::certify`]) over `[MII, II−1]`; a witness below the
/// achieved II certifies a nonzero optimality gap. Silent when the
/// heuristic is proved optimal, when the budget runs out before an
/// answer, and on oracle errors (those surface through A103/A203
/// attribution instead) — the lint only reports *certain* gaps.
pub fn optimality_lint(
    g: &DepGraph,
    sched: &Schedule,
    mach: &MachineDescription,
) -> Vec<Diagnostic> {
    let ii = sched.ii();
    let opts = OracleOptions {
        max_ii: Some(ii.saturating_sub(1)),
        node_budget: OPTIMALITY_BUDGET,
    };
    let Ok(r) = certify(g, mach, &opts) else {
        return Vec::new();
    };
    let (found, certainty) = match r.outcome {
        OracleOutcome::Proved { ii } => (ii, "exactly"),
        OracleOutcome::Feasible { ii } => (ii, "at least"),
        OracleOutcome::InfeasibleUpTo { .. } | OracleOutcome::Exhausted => return Vec::new(),
    };
    vec![Diagnostic::new(
        LintCode::OptimalityGap,
        format!(
            "heuristic II={ii} is not optimal: II={found} is feasible \
             (gap is {certainty} {})",
            ii - found
        ),
    )
    .with_note(format!(
        "oracle explored {} branch-and-bound nodes (MII={})",
        r.explored,
        r.mii.mii()
    ))]
}

/// A205: what the feedback-guided refiner ([`swp::refine`]) did to a
/// loop compiled under [`swp::CompileOptions::refine`]. Fires only when
/// the refiner actually closed cycles — attributing the recovered
/// interval to the winning perturbation — so unrefined compiles and
/// loops where no perturbation helped stay silent. A remaining gap to
/// the MII is noted (it may or may not be closable; A204 certifies).
pub fn refine_lint(rep: &swp::LoopReport) -> Vec<Diagnostic> {
    let Some(rs) = &rep.stats.refine else {
        return Vec::new();
    };
    if rs.closed() == 0 {
        return Vec::new();
    }
    let winner = rs.winner.as_deref().unwrap_or("?");
    let mut d = Diagnostic::new(
        LintCode::RefineAttribution,
        format!(
            "refinement closed {} cycle(s): II {} -> {} via '{winner}' \
             ({} perturbed attempt(s))",
            rs.closed(),
            rs.baseline_ii,
            rs.refined_ii,
            rs.attempts
        ),
    );
    let mii = rep.mii();
    if rs.refined_ii > mii {
        d = d.with_note(format!(
            "still {} cycle(s) above MII={mii}; the residue may be a real \
             gap (see A204) or the MII bound may be unachievable",
            rs.refined_ii - mii
        ));
    }
    vec![d]
}

/// A701–A703: what the abstract interpreter ([`swp::absint`]) did to a
/// loop compiled under [`swp::BuildOptions::absint_refute`]. Silent when
/// the knob was off (no stats recorded). Otherwise:
///
/// * **A701** (info) — attribution: recovered affine address forms,
///   recognized induction variables, and certified refutations, whenever
///   the analysis had any imprecise edge to look at;
/// * **A702** (info) — realized improvement: the recurrence bound dropped
///   because certified-refuted edges were pruned;
/// * **A703** (error) — the *independent* certificate checker rejected a
///   certificate the analysis proposed. The edge was conservatively kept
///   (soundness is unaffected), but analysis and checker disagree, and
///   exactly one of them is right.
pub fn absint_lint(rep: &swp::LoopReport) -> Vec<Diagnostic> {
    let Some(st) = &rep.stats.absint else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    if st.cert_failures > 0 {
        diags.push(
            Diagnostic::new(
                LintCode::AbsintCertFailure,
                format!(
                    "certificate checker rejected {} of {} refutation \
                     certificate(s); the edges were kept",
                    st.cert_failures,
                    st.cert_failures + st.refuted
                ),
            )
            .with_note(
                "the analysis proposed a certificate its own replay logic \
                 cannot validate — a bug in one of the two",
            ),
        );
    }
    if st.considered > 0 {
        diags.push(Diagnostic::new(
            LintCode::AbsintAttribution,
            format!(
                "absint: {} of {} memory access(es) have affine address forms \
                 ({} induction variable(s)); {} of {} imprecise edge(s) \
                 certified-refuted",
                st.lin_addrs, st.mem_accs, st.ivs, st.refuted, st.considered
            ),
        ));
    }
    if let (Some(before), Some(after)) = (st.rec_mii_before, st.rec_mii_after) {
        if after < before {
            diags.push(
                Diagnostic::new(
                    LintCode::AbsintIiImprovement,
                    format!(
                        "certified refutation lowered RecMII {before} -> {after} \
                         ({} edge(s) dropped)",
                        st.refuted
                    ),
                )
                .with_note(
                    "every dropped edge carries a machine-checked certificate; \
                     the A405 dynamic trace and analysis::tv re-prove the result",
                ),
            );
        }
    }
    diags
}

/// A301: register pressure exceeding a machine register file. MAXLIVE is
/// computed by [`swp::register_pressure`]; this converts violations into
/// error diagnostics (a schedule that does not fit cannot be allocated
/// without spills the paper's machine model has no way to express).
pub fn pressure_lint(report: &PressureReport, mach: &MachineDescription) -> Vec<Diagnostic> {
    report
        .violations
        .iter()
        .map(|&(class, required, available)| {
            Diagnostic::new(
                LintCode::RegisterPressure,
                format!(
                    "register pressure: class {class:?} needs {required} registers, \
                     machine '{}' has {available}",
                    mach.name()
                ),
            )
            .with_note(
                "raise the file size, lower MVE unrolling, or relax the schedule; \
                 the emitted code cannot be register-allocated as is",
            )
        })
        .collect()
}

/// A302: operations with zero slack. The slack of a scheduled op is the
/// smallest margin over its in- and out-edges `u -> v`:
/// `(t(v) - t(u)) - (d - II·ω)`; an op with zero slack cannot move by one
/// cycle in either direction without violating a dependence, i.e. it lies
/// on the schedule's critical path.
pub fn slack_lint(g: &DepGraph, sched: &Schedule) -> Vec<Diagnostic> {
    let n = g.num_nodes();
    if n == 0 || g.edges().is_empty() {
        return Vec::new();
    }
    let ii = sched.ii() as i64;
    let mut slack: Vec<Option<i64>> = vec![None; n];
    for e in g.edges() {
        let margin =
            (sched.time(e.to) - sched.time(e.from)) - (e.delay - ii * e.omega as i64);
        debug_assert!(margin >= 0, "schedule violates edge {e:?}");
        for node in [e.from, e.to] {
            let s = &mut slack[node.index()];
            *s = Some(s.map_or(margin, |cur| cur.min(margin)));
        }
    }
    let zero: Vec<_> = g
        .node_ids()
        .filter(|&id| slack[id.index()] == Some(0))
        .collect();
    if zero.is_empty() {
        return Vec::new();
    }
    let mut d = Diagnostic::new(
        LintCode::ZeroSlack,
        format!(
            "{} of {} op(s) have zero slack at II={}: the critical path is tight",
            zero.len(),
            n,
            sched.ii()
        ),
    );
    for &id in zero.iter().take(MAX_NOTES) {
        let label = match &g.node(id).kind {
            NodeKind::Op(op) => format!("'{op}'"),
            NodeKind::Cond(c) => format!("'if {}'", c.cond),
        };
        d.notes
            .push(format!("{id} {label} at cycle {}", sched.time(id)));
    }
    if zero.len() > MAX_NOTES {
        d.notes.push(format!("… and {} more", zero.len() - MAX_NOTES));
    }
    vec![d]
}

/// A303: which resource(s) saturate at the achieved II. Reuses
/// [`swp::viz::utilization`]; a resource at ~100% explains *why* the loop
/// cannot run faster — lowering its utilization (fewer ops, more units)
/// is the only way to shrink the interval further.
pub fn bottleneck_lint(
    g: &DepGraph,
    sched: &Schedule,
    mach: &MachineDescription,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (name, u) in swp::viz::utilization(g, sched, mach) {
        if u >= BOTTLENECK_THRESHOLD {
            diags.push(
                Diagnostic::new(
                    LintCode::BottleneckResource,
                    format!(
                        "resource '{name}' is saturated ({u:.0}% busy) at II={}: \
                         it binds the initiation interval",
                        sched.ii()
                    ),
                )
                .with_note(
                    "the schedule is resource-bound here; RecMII attribution (A203) \
                     is moot unless it matches this II",
                ),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::test_machine;
    use machine::OpClass;
    use swp::{DepEdge, DepKind, Node, NodeId};

    fn fadd_node(mach: &MachineDescription) -> Node {
        Node::op(
            ir::Op::new(
                ir::Opcode::FAdd,
                Some(ir::VReg(0)),
                vec![ir::Imm::F(1.0).into(), ir::Imm::F(2.0).into()],
            ),
            mach.timing(OpClass::FloatAdd).reservation.clone(),
        )
    }

    fn edge(from: u32, to: u32, delay: i64, omega: u32) -> DepEdge {
        DepEdge::new(NodeId(from), NodeId(to), omega, delay, DepKind::True)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    /// A 2-op chain scheduled with explicit times: op1 exactly at the
    /// dependence distance (zero slack) in one schedule, with a gap in
    /// another.
    #[test]
    fn a302_distinguishes_tight_from_slack_schedules() {
        let m = test_machine();
        let mut g = DepGraph::new();
        g.add_node(fadd_node(&m));
        g.add_node(fadd_node(&m));
        g.add_edge(edge(0, 1, 3, 0));

        let tight = Schedule::new(vec![0, 3], 4);
        let diags = slack_lint(&g, &tight);
        assert_eq!(codes(&diags), vec!["A302"]);
        assert!(diags[0].message.starts_with("2 of 2"), "{diags:?}");

        let loose = Schedule::new(vec![0, 5], 4);
        assert!(slack_lint(&g, &loose).is_empty());
    }

    #[test]
    fn a303_fires_when_a_resource_saturates() {
        // test_machine has one fadd unit with a single-cycle reservation:
        // two adds at II=2 keep it 100% busy.
        let m = test_machine();
        let mut g = DepGraph::new();
        g.add_node(fadd_node(&m));
        g.add_node(fadd_node(&m));
        let sched = Schedule::new(vec![0, 1], 2);
        let diags = bottleneck_lint(&g, &sched, &m);
        assert_eq!(codes(&diags), vec!["A303"]);
        assert!(diags[0].message.contains("saturated"), "{diags:?}");

        // At II=4 the unit is half idle: silent.
        let sched = Schedule::new(vec![0, 1], 4);
        assert!(bottleneck_lint(&g, &sched, &m).is_empty());
    }

    /// A lone fadd pipelines at II=1; handing the lint a schedule at
    /// II=2 must certify the 1-cycle gap, and the optimal schedule must
    /// stay silent.
    #[test]
    fn a204_fires_only_on_certified_gaps() {
        let m = test_machine();
        let mut g = DepGraph::new();
        g.add_node(fadd_node(&m));

        let slow = Schedule::new(vec![0], 2);
        let diags = optimality_lint(&g, &slow, &m);
        assert_eq!(codes(&diags), vec!["A204"]);
        assert_eq!(diags[0].severity, crate::diag::Severity::Warning);
        assert!(
            diags[0].message.contains("II=1 is feasible"),
            "{diags:?}"
        );
        assert!(diags[0].message.contains("exactly 1"), "{diags:?}");

        let optimal = Schedule::new(vec![0], 1);
        assert!(optimality_lint(&g, &optimal, &m).is_empty());
    }

    /// A205 fires only when refinement stats exist AND cycles were
    /// closed; the message names the winning move and the counts.
    #[test]
    fn a205_fires_only_on_closed_gaps() {
        use swp::RefineStats;
        let mut rep = swp::LoopReport {
            label: "loop0".into(),
            ..Default::default()
        };
        // No refine stats at all: unrefined compile, silent.
        assert!(refine_lint(&rep).is_empty());

        // Refiner ran but nothing improved: silent.
        rep.stats.refine = Some(RefineStats {
            baseline_ii: 9,
            refined_ii: 9,
            attempts: 64,
            winner: None,
        });
        assert!(refine_lint(&rep).is_empty());

        // Refiner closed 2 cycles via a rotation seed.
        rep.stats.refine = Some(RefineStats {
            baseline_ii: 9,
            refined_ii: 7,
            attempts: 17,
            winner: Some("rot#2".into()),
        });
        let diags = refine_lint(&rep);
        assert_eq!(codes(&diags), vec!["A205"]);
        assert_eq!(diags[0].severity, crate::diag::Severity::Info);
        assert!(
            diags[0].message.contains("closed 2 cycle(s): II 9 -> 7 via 'rot#2'"),
            "{diags:?}"
        );
    }

    /// A701/A702/A703: silent without stats; each fires only on its own
    /// trigger (considered edges, a dropped RecMII, a rejected cert).
    #[test]
    fn a7xx_fire_only_on_their_triggers() {
        use swp::AbsintStats;
        let mut rep = swp::LoopReport {
            label: "loop0".into(),
            ..Default::default()
        };
        // Knob off: no stats, all three silent.
        assert!(absint_lint(&rep).is_empty());

        // Analysis ran but found no imprecise edges and nothing to refute:
        // still silent (negative case for A701).
        rep.stats.absint = Some(AbsintStats {
            mem_accs: 3,
            lin_addrs: 3,
            ivs: 1,
            ..Default::default()
        });
        assert!(absint_lint(&rep).is_empty());

        // Candidates considered, none refuted, bound unchanged:
        // attribution only (negative case for A702 and A703).
        rep.stats.absint = Some(AbsintStats {
            mem_accs: 3,
            lin_addrs: 2,
            ivs: 1,
            considered: 2,
            rec_mii_before: Some(5),
            rec_mii_after: Some(5),
            ..Default::default()
        });
        let diags = absint_lint(&rep);
        assert_eq!(codes(&diags), vec!["A701"]);
        assert_eq!(diags[0].severity, crate::diag::Severity::Info);

        // Refutation dropped the recurrence bound: A701 + A702.
        rep.stats.absint = Some(AbsintStats {
            mem_accs: 3,
            lin_addrs: 3,
            ivs: 1,
            considered: 2,
            refuted: 2,
            rec_mii_before: Some(5),
            rec_mii_after: Some(2),
            ..Default::default()
        });
        let diags = absint_lint(&rep);
        assert_eq!(codes(&diags), vec!["A701", "A702"]);
        assert!(diags[1].message.contains("RecMII 5 -> 2"), "{diags:?}");

        // A rejected certificate is an error even when others closed.
        rep.stats.absint = Some(AbsintStats {
            mem_accs: 3,
            lin_addrs: 3,
            considered: 2,
            refuted: 1,
            cert_failures: 1,
            ..Default::default()
        });
        let diags = absint_lint(&rep);
        assert_eq!(codes(&diags), vec!["A703", "A701"]);
        assert_eq!(diags[0].severity, crate::diag::Severity::Error);
    }

    #[test]
    fn a301_converts_violations_to_errors() {
        let m = test_machine();
        let report = PressureReport {
            max_live: [(machine::RegClass::Float, 40)].into_iter().collect(),
            violations: vec![(machine::RegClass::Float, 40, 32)],
        };
        let diags = pressure_lint(&report, &m);
        assert_eq!(codes(&diags), vec!["A301"]);
        assert_eq!(diags[0].severity, crate::diag::Severity::Error);
        assert!(diags[0].message.contains("40"), "{diags:?}");

        let clean = PressureReport {
            max_live: Default::default(),
            violations: Vec::new(),
        };
        assert!(pressure_lint(&clean, &m).is_empty());
    }
}
