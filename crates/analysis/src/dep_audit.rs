//! The memory-dependence soundness auditor (A402–A406).
//!
//! Two halves, sharing the edge provenance the graph builder records
//! ([`swp::EdgeOrigin`]):
//!
//! * **Static** — classify every memory edge of a pipelined loop as
//!   *proved-necessary* (exact alias verdict), *conservative/bounded*
//!   (imprecise verdict), or *refutable* (a rebuild with the audit-time
//!   trip count proves the edge corresponds to no real dependence). Report
//!   the MII the loop would have if the conservative edges were dropped —
//!   the dependence-limited II gap. Report-only: nothing here feeds back
//!   into code generation.
//! * **Dynamic** — run the source program under the reference semantics
//!   with memory tracing ([`vm::trace_memory`]), derive the observed
//!   dependence set with iteration distances, and check that every
//!   observed dependence is covered by a static memory edge with
//!   `omega <= observed distance`. An uncovered observation means the
//!   dependence graph the scheduler trusted is **unsound** — an
//!   error-severity A405. Static edges no run ever exercised are precision
//!   telemetry (A406), not defects.
//!
//! The dynamic check is deliberately run against a freshly rebuilt,
//! *unpruned* graph: dominated-edge pruning removes direct edges whose
//! constraints are implied by paths, which is legal for scheduling but
//! would produce false soundness alarms under the direct-edge coverage
//! rule. [`coverage_check`] itself takes any graph, so tests can aim it at
//! deliberately broken ones.

use ir::{Loop, MemRef, Opcode, Program, Stmt, TripCount, Value};
use machine::MachineDescription;
use swp::{
    build_item_graph, rec_mii, res_mii, tarjan, Access, BuildOptions, CompiledProgram, DepGraph,
    DepKind, NodeId, SccClosure,
};
use vm::{observed_deps, trace_memory, ObservedDep, RunInput, SiteInfo};

use crate::diag::{Diagnostic, LintCode};

/// Cap on per-edge note lines attached to one diagnostic.
const MAX_NOTES: usize = 8;

/// Map from a loop's memory-access sites (static program order, THEN arm
/// before ELSE arm — the order both [`vm::trace_memory`] and the graph
/// builder use) to graph nodes.
#[derive(Debug, Clone, Default)]
pub struct SiteTable {
    /// Graph node containing each site.
    pub nodes: Vec<NodeId>,
    /// Opcode and memory-reference metadata of each site.
    pub kinds: Vec<(Opcode, Option<MemRef>)>,
}

/// Extracts the access sites of a loop graph, in the builder's flattening
/// order.
pub fn site_table(g: &DepGraph) -> SiteTable {
    let mut t = SiteTable::default();
    for (i, n) in g.nodes().iter().enumerate() {
        n.for_each_access(&mut |acc| {
            if let Access::Op { op, .. } = acc {
                if op.touches_memory() {
                    t.nodes.push(NodeId(i as u32));
                    t.kinds.push((op.opcode, op.mem));
                }
            }
        });
    }
    t
}

/// True when the graph's site sequence matches a trace's: same length,
/// same opcodes, same memory references, position by position.
pub fn sites_match(table: &SiteTable, trace_sites: &[SiteInfo]) -> bool {
    table.kinds.len() == trace_sites.len()
        && table
            .kinds
            .iter()
            .zip(trace_sites)
            .all(|(&(oc, mr), s)| oc == s.opcode && mr == s.mem)
}

/// Checks every observed dependence against the graph: covered means a
/// Memory edge `node(from) -> node(to)` with `omega <= observed distance`
/// exists. Same-node pairs are auto-covered — a node issues once per
/// initiation interval, so cross-iteration ordering between its own
/// accesses is enforced by time (and the builder deliberately omits the
/// zero-omega self edges). Returns one A405 per uncovered observation.
pub fn coverage_check(
    g: &DepGraph,
    sites: &SiteTable,
    observed: &[ObservedDep],
    label: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for d in observed {
        let from = sites.nodes[d.from_site as usize];
        let to = sites.nodes[d.to_site as usize];
        if from == to {
            continue;
        }
        let covered = g.edges().iter().any(|e| {
            e.kind == DepKind::Memory && e.from == from && e.to == to && e.omega as u64 <= d.distance
        });
        if !covered {
            let (oc_f, _) = sites.kinds[d.from_site as usize];
            let (oc_t, _) = sites.kinds[d.to_site as usize];
            diags.push(
                Diagnostic::new(
                    LintCode::MemDepViolation,
                    format!(
                        "loop '{label}': observed {oc_f} (site {}) -> {oc_t} (site {}) at \
                         iteration distance {} has no covering memory edge {from} -> {to}",
                        d.from_site, d.to_site, d.distance
                    ),
                )
                .with_note(
                    "the dependence graph under-constrains the scheduler: a pipelined \
                     schedule may reorder these accesses",
                ),
            );
        }
    }
    diags
}

/// The audit result for one pipelined loop.
#[derive(Debug, Clone)]
pub struct LoopAudit {
    /// The loop's emitter label (`loopN`).
    pub label: String,
    /// Memory edges from exact alias verdicts (proved necessary).
    pub exact: u32,
    /// Memory edges from trip-bounded distance ranges.
    pub bounded: u32,
    /// Memory edges from worst-case `Unknown` verdicts.
    pub conservative: u32,
    /// Bounded/conservative edges a rebuild with the audit-time trip count
    /// removes or weakens: provably no real dependence at their omega.
    pub refutable: u32,
    /// MII of the graph as built (max of resource and recurrence bounds).
    pub mii: Option<u32>,
    /// MII with conservative memory edges dropped.
    pub relaxed_mii: Option<u32>,
    /// Observed dependences cross-checked (0 when the loop was not traced
    /// or its sites did not align).
    pub observed: usize,
    /// Observed dependences with no covering static edge (A405 count).
    pub violations: usize,
    /// Static memory edges no observation exercised.
    pub unobserved: u32,
    /// Whether the dynamic trace aligned with the graph's sites.
    pub aligned: bool,
    /// The loop's diagnostics.
    pub diags: Vec<Diagnostic>,
}

impl LoopAudit {
    /// The II gap attributable to conservative edges.
    pub fn ii_gap(&self) -> u32 {
        match (self.mii, self.relaxed_mii) {
            (Some(full), Some(relaxed)) => full.saturating_sub(relaxed),
            _ => 0,
        }
    }

    /// Total memory edges.
    pub fn mem_edges(&self) -> u32 {
        self.exact + self.bounded + self.conservative
    }
}

/// The audit of one compiled program.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// One entry per pipelined loop.
    pub loops: Vec<LoopAudit>,
    /// The traced execution faulted (no dynamic cross-check happened).
    pub trace_error: Option<String>,
}

impl AuditReport {
    /// Total soundness violations across all loops.
    pub fn violations(&self) -> usize {
        self.loops.iter().map(|l| l.violations).sum()
    }

    /// All diagnostics, flattened.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.loops.iter().flat_map(|l| l.diags.iter().cloned()).collect()
    }
}

/// Audits every pipelined loop of `compiled`: static classification,
/// refutability, II gap, and — when `input` drives the loop — the dynamic
/// soundness cross-check.
pub fn audit_compiled(
    program: &Program,
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    input: &RunInput,
) -> AuditReport {
    audit_compiled_with(program, compiled, mach, input, &swp::CompileOptions::default())
}

/// [`audit_compiled`], aware of the compile options the artifact was built
/// under. This matters under [`swp::BuildOptions::absint_refute`]: both
/// rebuilds (refutability and dynamic coverage) apply the same certified
/// refutations and resolved trip counts the emitter did, so the coverage
/// rule checks the graph the scheduler *actually trusted* — an unsound
/// refutation surfaces as an A405, not as a silently-passing audit of the
/// unrefuted graph.
pub fn audit_compiled_with(
    program: &Program,
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    input: &RunInput,
    opts: &swp::CompileOptions,
) -> AuditReport {
    let facts = opts
        .build
        .absint_refute
        .then(|| swp::absint::resolve_facts(program));
    let mut report = AuditReport::default();
    let targets: Vec<(u32, &swp::LoopArtifacts)> = compiled
        .artifacts
        .iter()
        .filter_map(|a| parse_label(&a.label).map(|i| (i, a)))
        .collect();
    let indices: Vec<u32> = targets.iter().map(|&(i, _)| i).collect();
    let trace = match trace_memory(program, input, &indices) {
        Ok(t) => Some(t),
        Err(e) => {
            report.trace_error = Some(e.to_string());
            None
        }
    };

    for (idx, art) in targets {
        let g = &art.graph;
        let lf = facts.as_ref().and_then(|f| f.for_loop(idx));
        let mut audit = LoopAudit {
            label: art.label.clone(),
            exact: 0,
            bounded: 0,
            conservative: 0,
            refutable: 0,
            mii: None,
            relaxed_mii: None,
            observed: 0,
            violations: 0,
            unobserved: 0,
            aligned: false,
            diags: Vec::new(),
        };

        for e in g.edges() {
            if e.kind != DepKind::Memory {
                continue;
            }
            match e.origin {
                swp::EdgeOrigin::MemBounded => audit.bounded += 1,
                swp::EdgeOrigin::MemConservative => audit.conservative += 1,
                _ => audit.exact += 1,
            }
        }

        // Trip counts: the one the builder had, and the sharper one the
        // audit can resolve (a register trip preset in the run input).
        let loop_ref = find_loop(&program.body, idx);
        let build_trip = loop_ref.and_then(|l| match l.trip {
            TripCount::Const(n) => Some(n),
            TripCount::Reg(_) => None,
        });
        let audit_trip = build_trip.or_else(|| {
            let l = loop_ref?;
            let TripCount::Reg(r) = l.trip else { return None };
            input.regs.iter().find_map(|&(reg, v)| match v {
                Value::I(n) if reg == r && n >= 0 => Some(n as u32),
                _ => None,
            })
        });

        // Refutability: rebuild the memory edges with the audit-time trip
        // and see which imprecise edges survive. (Nothing here changes the
        // schedule — the rebuilt graph is dropped after the diff.)
        if audit.bounded + audit.conservative > 0 {
            let refute_trip = audit_trip.or_else(|| lf.and_then(|f| f.trip));
            let mut rebuilt = build_item_graph(
                g.nodes().to_vec(),
                mach,
                BuildOptions {
                    trip: refute_trip,
                    ..BuildOptions::default()
                },
            );
            if let Some(lf) = lf {
                swp::absint::refute_graph(&mut rebuilt, lf);
            }
            let mut refuted_notes = Vec::new();
            for e in g.edges() {
                if e.kind != DepKind::Memory
                    || !matches!(
                        e.origin,
                        swp::EdgeOrigin::MemBounded | swp::EdgeOrigin::MemConservative
                    )
                {
                    continue;
                }
                let survives = rebuilt.edges().iter().any(|r| {
                    r.kind == DepKind::Memory && r.from == e.from && r.to == e.to && r.omega <= e.omega
                });
                if !survives {
                    audit.refutable += 1;
                    if refuted_notes.len() < MAX_NOTES {
                        refuted_notes.push(format!(
                            "edge {} -> {} (omega={}, origin={}) is refuted at trip {:?}",
                            e.from, e.to, e.omega, e.origin, audit_trip
                        ));
                    }
                }
            }
            if audit.refutable > 0 {
                let mut d = Diagnostic::new(
                    LintCode::RefutableMemEdge,
                    format!(
                        "loop '{}': {} of {} imprecise memory edge(s) are refutable given the \
                         trip count — they constrain the schedule but correspond to no real \
                         dependence",
                        art.label,
                        audit.refutable,
                        audit.bounded + audit.conservative
                    ),
                );
                d.notes = refuted_notes;
                if audit.refutable as usize > MAX_NOTES {
                    d.notes
                        .push(format!("… and {} more", audit.refutable as usize - MAX_NOTES));
                }
                audit.diags.push(d);
            }
        }

        // II gap: recompute the bound with conservative edges dropped.
        audit.mii = graph_mii(g, mach);
        if audit.conservative > 0 {
            let mut relaxed = g.clone();
            relaxed.retain_edges(|_, e| !e.is_conservative());
            audit.relaxed_mii = graph_mii(&relaxed, mach);
            if audit.ii_gap() > 0 {
                audit.diags.push(Diagnostic::new(
                    LintCode::ConservativeIiGap,
                    format!(
                        "loop '{}': dropping {} conservative memory edge(s) would lower MII \
                         from {} to {} — the loop is dependence-limited by imprecision",
                        art.label,
                        audit.conservative,
                        audit.mii.unwrap_or(0),
                        audit.relaxed_mii.unwrap_or(0)
                    ),
                ));
            }
        } else {
            audit.relaxed_mii = audit.mii;
        }

        // Dynamic cross-check, against the unpruned rebuild (dominated-edge
        // pruning legally removes direct edges the coverage rule wants).
        if let Some(trace) = trace.as_ref().and_then(|t| t.for_loop(idx)) {
            let coverage_trip = build_trip.or_else(|| lf.and_then(|f| f.trip));
            let mut coverage_graph = build_item_graph(
                g.nodes().to_vec(),
                mach,
                BuildOptions {
                    trip: coverage_trip,
                    ..BuildOptions::default()
                },
            );
            if let Some(lf) = lf {
                swp::absint::refute_graph(&mut coverage_graph, lf);
            }
            let coverage_graph = coverage_graph;
            let sites = site_table(&coverage_graph);
            if sites_match(&sites, &trace.sites) {
                audit.aligned = true;
                let obs = observed_deps(trace);
                audit.observed = obs.len();
                let viol = coverage_check(&coverage_graph, &sites, &obs, &art.label);
                audit.violations = viol.len();
                audit.diags.extend(viol);

                // Telemetry: memory edges never exercised by this input.
                let exercised: Vec<(NodeId, NodeId)> = obs
                    .iter()
                    .map(|d| {
                        (
                            sites.nodes[d.from_site as usize],
                            sites.nodes[d.to_site as usize],
                        )
                    })
                    .collect();
                audit.unobserved = coverage_graph
                    .edges()
                    .iter()
                    .filter(|e| {
                        e.kind == DepKind::Memory && !exercised.contains(&(e.from, e.to))
                    })
                    .count() as u32;
                if audit.unobserved > 0 && !obs.is_empty() {
                    audit.diags.push(Diagnostic::new(
                        LintCode::UnobservedMemEdge,
                        format!(
                            "loop '{}': {} static memory edge(s) were never exercised by the \
                             traced input (precision headroom, not a defect)",
                            art.label, audit.unobserved
                        ),
                    ));
                }
            } else {
                audit.diags.push(
                    Diagnostic::new(
                        LintCode::MemDepClassification,
                        format!(
                            "loop '{}': trace sites ({}) do not align with graph sites ({}); \
                             dynamic cross-check skipped",
                            art.label,
                            trace.sites.len(),
                            sites.kinds.len()
                        ),
                    )
                    .with_note("the loop body was restructured between IR and scheduling"),
                );
            }
        }

        // The classification summary, last so its counts are final.
        if audit.mem_edges() > 0 {
            audit.diags.insert(
                0,
                Diagnostic::new(
                    LintCode::MemDepClassification,
                    format!(
                        "loop '{}': {} memory edge(s): {} exact, {} bounded, {} conservative \
                         ({} refutable); MII {} -> {} without conservative edges",
                        art.label,
                        audit.mem_edges(),
                        audit.exact,
                        audit.bounded,
                        audit.conservative,
                        audit.refutable,
                        audit.mii.unwrap_or(0),
                        audit.relaxed_mii.unwrap_or(0)
                    ),
                ),
            );
        }
        report.loops.push(audit);
    }
    report
}

/// MII of a graph: max of the resource bound and the recurrence bound over
/// its nontrivial components (`None` when either bound is undefined —
/// zero-capacity resource or illegal cycle).
pub fn graph_mii(g: &DepGraph, mach: &MachineDescription) -> Option<u32> {
    let res = res_mii(g, mach).ok()?;
    let scc = tarjan(g);
    let mut closures: Vec<SccClosure> = Vec::new();
    for c in 0..scc.len() {
        let nontrivial = scc.members[c].len() > 1 || {
            let n = scc.members[c][0];
            g.succ_edges(n).any(|e| e.to == n)
        };
        if nontrivial {
            closures.push(SccClosure::compute(g, &scc, c));
        }
    }
    let rec = rec_mii(&closures).ok()?;
    Some(res.max(rec).max(1))
}

/// Parses an emitter loop label (`loopN`) back to its pre-order index.
fn parse_label(label: &str) -> Option<u32> {
    label.strip_prefix("loop")?.parse().ok()
}

/// Finds the loop with the given pre-order index, replicating the
/// emitter's numbering (every loop encountered takes a number, THEN arm
/// before ELSE arm).
fn find_loop(stmts: &[Stmt], target: u32) -> Option<&Loop> {
    fn walk<'a>(stmts: &'a [Stmt], target: u32, next: &mut u32) -> Option<&'a Loop> {
        for s in stmts {
            match s {
                Stmt::Op(_) => {}
                Stmt::Loop(l) => {
                    let id = *next;
                    *next += 1;
                    if id == target {
                        return Some(l);
                    }
                    if let Some(f) = walk(&l.body, target, next) {
                        return Some(f);
                    }
                }
                Stmt::If(i) => {
                    if let Some(f) = walk(&i.then_body, target, next) {
                        return Some(f);
                    }
                    if let Some(f) = walk(&i.else_body, target, next) {
                        return Some(f);
                    }
                }
            }
        }
        None
    }
    let mut next = 0;
    walk(stmts, target, &mut next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::ProgramBuilder;
    use machine::presets::warp_cell;
    use swp::CompileOptions;

    fn stencil() -> (Program, RunInput) {
        // a[i] = a[i] + a[i-1]: an exact distance-1 flow dependence.
        let mut b = ProgramBuilder::new("stencil");
        let a = b.array("a", 64);
        b.for_counted(TripCount::Const(32), |b, i| {
            let x = b.load_elem(a, i.into(), 1, 4);
            let y = b.load_elem(a, i.into(), 1, 3);
            let z = b.fadd(x.into(), y.into());
            b.store_elem(a, i.into(), 1, 4, z.into());
        });
        let p = b.finish();
        let input = RunInput {
            mem: (0..64).map(|i| i as f32 * 0.5).collect(),
            ..Default::default()
        };
        (p, input)
    }

    #[test]
    fn clean_kernel_audits_clean() {
        let (p, input) = stencil();
        let m = warp_cell();
        let c = swp::compile(&p, &m, &CompileOptions::default()).unwrap();
        assert!(!c.artifacts.is_empty());
        let rep = audit_compiled(&p, &c, &m, &input);
        assert!(rep.trace_error.is_none(), "{rep:?}");
        assert_eq!(rep.violations(), 0, "{:?}", rep.diagnostics());
        let l = &rep.loops[0];
        assert!(l.aligned, "{l:?}");
        assert!(l.observed > 0, "{l:?}");
        assert!(l.exact > 0, "{l:?}");
        assert_eq!(l.conservative, 0, "{l:?}");
        assert_eq!(l.ii_gap(), 0, "{l:?}");
    }

    #[test]
    fn broken_graph_is_flagged_unsound() {
        let (p, input) = stencil();
        let m = warp_cell();
        let c = swp::compile(&p, &m, &CompileOptions::default()).unwrap();
        let g = &c.artifacts[0].graph;
        let sites = site_table(g);
        let trace = trace_memory(&p, &input, &[0]).unwrap();
        let obs = observed_deps(&trace.loops[0]);
        // Intact graph: clean.
        assert!(coverage_check(g, &sites, &obs, "loop0").is_empty());
        // Drop every memory edge: the flow dependence is now uncovered.
        let mut broken = g.clone();
        broken.retain_edges(|_, e| e.kind != DepKind::Memory);
        let viol = coverage_check(&broken, &sites, &obs, "loop0");
        assert!(!viol.is_empty());
        assert!(viol.iter().all(|d| d.code == LintCode::MemDepViolation));
    }

    #[test]
    fn unknown_memref_counts_conservative_and_gaps() {
        // A store through an unanalyzable address: conservative edges and
        // (with the load) a dependence-limited II gap.
        let mut b = ProgramBuilder::new("scatter");
        let a = b.array("a", 64);
        b.for_counted(TripCount::Const(16), |b, i| {
            let x = b.load_elem(a, i.into(), 1, 0);
            let t = b.ftoi(x.into());
            let addr = b.elem_addr(a, t.into(), 1, 32);
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), MemRef::unknown(a));
        });
        let p = b.finish();
        let m = warp_cell();
        let c = swp::compile(&p, &m, &CompileOptions::default()).unwrap();
        assert!(!c.artifacts.is_empty(), "scatter should still pipeline");
        let rep = audit_compiled(&p, &c, &m, &RunInput::default());
        let l = &rep.loops[0];
        assert!(l.conservative > 0, "{l:?}");
        assert_eq!(rep.violations(), 0, "{:?}", rep.diagnostics());
        assert!(
            l.diags.iter().any(|d| d.code == LintCode::MemDepClassification),
            "{l:?}"
        );
    }

    #[test]
    fn label_parsing_and_loop_lookup() {
        assert_eq!(parse_label("loop0"), Some(0));
        assert_eq!(parse_label("loop12"), Some(12));
        assert_eq!(parse_label("kernel"), None);
        let (p, _) = stencil();
        assert!(find_loop(&p.body, 0).is_some());
        assert!(find_loop(&p.body, 1).is_none());
    }
}
