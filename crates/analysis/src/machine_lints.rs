//! Machine-description lints: op classes with no functional unit (A101),
//! unreferenced resources (A102), and zero-capacity resources demanded by
//! an actual dependence graph (A103).

use machine::{MachineDescription, OpClass};
use swp::DepGraph;

use crate::diag::{Diagnostic, LintCode};

/// Runs the program-independent machine lints.
pub fn lint_machine(mach: &MachineDescription) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_free_classes(mach, &mut diags);
    check_unreferenced_resources(mach, &mut diags);
    diags
}

/// A101: a non-pseudo class whose reservation table demands no resource
/// can issue unboundedly many ops per cycle. `uniform_default_timing`
/// leaves classes in this state — a legal way to say "this machine does
/// not implement queues" — so this is a warning, not an error; but a
/// class the machine is *supposed* to implement showing up here is a
/// modeling bug.
fn check_free_classes(mach: &MachineDescription, diags: &mut Vec<Diagnostic>) {
    for class in OpClass::ALL {
        if class == OpClass::Pseudo {
            continue;
        }
        let t = mach.timing(class);
        let reserves_any = t
            .reservation
            .rows()
            .any(|row| row.iter().any(|(_, units)| units > 0));
        if !reserves_any {
            diags.push(
                Diagnostic::new(
                    LintCode::FreeOpClass,
                    format!(
                        "machine '{}': class {class} reserves no functional unit",
                        mach.name()
                    ),
                )
                .with_note(
                    "unboundedly many such ops can issue per cycle; intended only for \
                     classes the machine does not implement",
                ),
            );
        }
    }
}

/// A102: a resource no operation class ever reserves (and that is not the
/// designated branch resource) is dead weight in the description.
fn check_unreferenced_resources(mach: &MachineDescription, diags: &mut Vec<Diagnostic>) {
    let mut referenced = vec![false; mach.num_resources()];
    for class in OpClass::ALL {
        for row in mach.timing(class).reservation.rows() {
            for (rid, units) in row.iter() {
                if units > 0 {
                    referenced[rid.index()] = true;
                }
            }
        }
    }
    if let Some(b) = mach.branch_resource() {
        referenced[b.index()] = true;
    }
    for (i, r) in mach.resources().iter().enumerate() {
        if !referenced[i] {
            diags.push(Diagnostic::new(
                LintCode::UnreferencedResource,
                format!(
                    "machine '{}': resource '{}' is reserved by no operation class",
                    mach.name(),
                    r.name
                ),
            ));
        }
    }
}

/// A103: nodes of a dependence graph demanding units of a resource the
/// machine has zero of. No initiation interval exists for such a graph —
/// this is the structured-diagnostic form of [`swp::ZeroCapacity`] /
/// `SchedError::ImpossibleResource`, emitted *before* scheduling so the
/// defect is attributed to the machine/graph pair rather than surfacing
/// as a search failure.
pub fn check_graph_resources(g: &DepGraph, mach: &MachineDescription) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut flagged = vec![false; mach.num_resources()];
    for id in g.node_ids() {
        for row in g.node(id).reservation.rows() {
            for (rid, units) in row.iter() {
                if units > 0 && mach.units(rid) == 0 && !flagged[rid.index()] {
                    flagged[rid.index()] = true;
                    diags.push(
                        Diagnostic::new(
                            LintCode::ZeroCapacityDemanded,
                            format!(
                                "node {id} demands resource '{}', of which machine '{}' \
                                 has zero units",
                                mach.resources()[rid.index()].name,
                                mach.name()
                            ),
                        )
                        .with_note(
                            "the resource bound is infinite: no initiation interval can \
                             schedule this body (the scheduler would fail with \
                             ImpossibleResource)",
                        ),
                    );
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::{test_machine, warp_cell};
    use machine::{MachineBuilder, ReservationTable};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn warp_cell_is_fully_modeled() {
        // Every class warp implements reserves a unit; the description has
        // no dead resources.
        let diags = lint_machine(&warp_cell());
        assert!(!codes(&diags).contains(&"A102"), "{diags:?}");
    }

    #[test]
    fn a101_fires_on_free_class() {
        // A machine that leaves every class on the free default timing
        // except the one it actually implements: the rest are flagged.
        let mut b = MachineBuilder::new("free-classes");
        let alu = b.resource("alu", 1);
        b.uniform_default_timing(1);
        b.timing(machine::OpClass::Alu, 1, ReservationTable::single_cycle(alu, 1));
        let m = b.build().unwrap();
        let diags = lint_machine(&m);
        assert!(codes(&diags).contains(&"A101"), "{diags:?}");
        assert!(
            diags.iter().any(|d| d.message.contains("qread")),
            "{diags:?}"
        );
        // The fully-modeled presets are silent.
        assert!(!codes(&lint_machine(&test_machine())).contains(&"A101"));
    }

    #[test]
    fn a102_fires_on_dead_resource() {
        let mut b = MachineBuilder::new("dead-res");
        let alu = b.resource("alu", 1);
        b.resource("ghost", 3);
        b.uniform_default_timing(1);
        b.timing(machine::OpClass::Alu, 1, ReservationTable::single_cycle(alu, 1));
        let m = b.build().unwrap();
        let diags = lint_machine(&m);
        assert!(codes(&diags).contains(&"A102"), "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("'ghost'")), "{diags:?}");
    }

    /// The zero-capacity regression: a machine may legally *declare* an
    /// absent (zero-unit) resource, and a hand-assembled graph node may
    /// demand it. `res_mii` reports `ZeroCapacity`; the lint must produce
    /// the structured A103 diagnostic naming the resource.
    #[test]
    fn a103_fires_when_graph_demands_phantom_resource() {
        let mut b = MachineBuilder::new("phantom-test");
        let fadd = b.resource("fadd", 1);
        let phantom = b.resource("phantom", 0);
        b.uniform_default_timing(1);
        b.timing(
            machine::OpClass::FloatAdd,
            2,
            ReservationTable::single_cycle(fadd, 1),
        );
        let m = b.build().unwrap();

        let mut g = DepGraph::new();
        g.add_node(swp::Node {
            kind: swp::NodeKind::Op(ir::Op::new(
                ir::Opcode::FAdd,
                Some(ir::VReg(0)),
                vec![ir::Imm::F(1.0).into(), ir::Imm::F(2.0).into()],
            )),
            reservation: ReservationTable::single_cycle(phantom, 1),
            len: 1,
        });

        // The scheduler-side error exists…
        assert!(swp::res_mii(&g, &m).is_err());
        // …and the lint turns it into a structured diagnostic.
        let diags = check_graph_resources(&g, &m);
        assert_eq!(codes(&diags), vec!["A103"]);
        assert_eq!(diags[0].severity, crate::diag::Severity::Error);
        assert!(diags[0].message.contains("'phantom'"), "{diags:?}");

        // A graph that leaves the phantom alone is clean.
        let mut ok = DepGraph::new();
        ok.add_node(swp::Node {
            kind: swp::NodeKind::Op(ir::Op::new(
                ir::Opcode::FAdd,
                Some(ir::VReg(0)),
                vec![ir::Imm::F(1.0).into(), ir::Imm::F(2.0).into()],
            )),
            reservation: ReservationTable::single_cycle(fadd, 1),
            len: 1,
        });
        assert!(check_graph_resources(&ok, &m).is_empty());
    }
}
