//! Static analysis over the pipeliner's three artifact layers: the IR, the
//! dependence graph, and the emitted schedule.
//!
//! Everything funnels into one shared diagnostics currency
//! ([`Diagnostic`]: stable `Axxx` code, severity, optional source span,
//! message, notes) with human-readable and JSON rendering, so the `lint`
//! binary, the batch driver and the test suite all consume the same
//! findings. The pass families (see `docs/LINTS.md` for the full table):
//!
//! * **IR lints** ([`lint_program`]) — initialization across iterations
//!   (A001), unused registers (A002), dead ops (A003), type errors (A004),
//!   and conservative memory references (A201).
//! * **Machine lints** ([`lint_machine`]) — op classes with no functional
//!   unit (A101) and unreferenced resources (A102).
//! * **Graph analyses** ([`lint_graph`]) — zero-capacity resources
//!   demanded by a graph (A103), transitively-dominated dependence edges
//!   (A202, the reporting face of [`swp::prune_dominated`]), and RecMII
//!   attribution (A203) naming the critical recurrence cycle(s).
//! * **Schedule diagnostics** ([`lint_schedule`], [`pressure_lint`],
//!   [`refine_lint`]) — zero-slack ops (A302), saturated resources
//!   (A303), register pressure (A301), and feedback-guided refinement
//!   attribution (A205).
//! * **Dependence audit** ([`audit_compiled`]) — memory-edge provenance
//!   classification (A402), refutable edges (A403), conservative II gap
//!   (A404), dynamic-trace soundness violations (A405), and unexercised
//!   edges (A406).
//! * **Translation validation** ([`validate_compiled`], `tv` module) —
//!   symbolic equivalence of the emitted pipelined code against the
//!   source program: proved (A601), abstained with a structured
//!   obligation (A602), or refuted with a concrete, replay-confirmed
//!   counterexample trip count (A603).
//! * **Abstract interpretation** ([`absint_lint`], over
//!   [`swp::absint`]'s per-loop stats) — derived address forms and
//!   certified refutations (A701), realized RecMII improvement (A702),
//!   and certificate-checker rejections (A703).
//!
//! [`analyze_compiled`] runs the graph and schedule passes over every
//! pipelined loop of a [`swp::CompiledProgram`] plus the whole-program
//! pressure check — the one-call entry point used by the `lint` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dep_audit;
pub mod diag;
pub mod graph_lints;
pub mod ir_lints;
pub mod machine_lints;
pub mod sched_lints;
pub mod service_lints;
pub mod tv;

pub use dep_audit::{
    audit_compiled, audit_compiled_with, coverage_check, graph_mii, site_table, sites_match,
    AuditReport, LoopAudit, SiteTable,
};
pub use diag::{max_severity, render, render_json, Diagnostic, LintCode, Severity};
pub use graph_lints::{dominated_edge_lint, lint_graph, recmii_attribution};
pub use ir_lints::lint_program;
pub use machine_lints::{check_graph_resources, lint_machine};
pub use sched_lints::{
    absint_lint, bottleneck_lint, lint_schedule, optimality_lint, pressure_lint, refine_lint,
    slack_lint,
};
pub use service_lints::cache_lint;
pub use tv::{validate_compiled, TvOptions, TvOutcome, TvVerdict};

use machine::MachineDescription;

/// Runs the graph and schedule passes over every pipelined loop of a
/// compiled program, plus the whole-program register-pressure check.
/// Diagnostics for a loop's artifacts are prefixed with its label.
pub fn analyze_compiled(
    c: &swp::CompiledProgram,
    mach: &MachineDescription,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for a in &c.artifacts {
        let mut loop_diags = lint_graph(&a.graph, mach);
        loop_diags.extend(lint_schedule(&a.graph, &a.schedule, mach));
        for mut d in loop_diags {
            d.message = format!("loop '{}': {}", a.label, d.message);
            diags.push(d);
        }
    }
    for rep in &c.reports {
        for mut d in refine_lint(rep).into_iter().chain(absint_lint(rep)) {
            d.message = format!("loop '{}': {}", rep.label, d.message);
            diags.push(d);
        }
    }
    diags.extend(pressure_lint(&c.pressure, mach));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::warp_cell;

    /// End-to-end: compile a small kernel and analyze the result. The
    /// pipelined loop must produce attribution-family diagnostics and no
    /// errors.
    #[test]
    fn analyze_compiled_end_to_end() {
        let mut b = ir::ProgramBuilder::new("vinc");
        let a = b.array("a", 64);
        b.for_counted(ir::TripCount::Const(64), |b, i| {
            let addr = b.elem_addr(a, i.into(), 1, 0);
            let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
            let y = b.fadd(x.into(), 1.0f32.into());
            b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
        });
        let p = b.finish();
        let m = warp_cell();
        let c = swp::compile(&p, &m, &swp::CompileOptions::default()).unwrap();
        assert!(!c.artifacts.is_empty(), "vinc should pipeline");

        let diags = analyze_compiled(&c, &m);
        // A clean kernel on a sane machine: nothing above info/warning.
        assert_ne!(max_severity(&diags), Some(Severity::Error), "{}", render(&diags));
        // Every artifact diagnostic names its loop.
        assert!(
            diags
                .iter()
                .filter(|d| d.code != LintCode::RegisterPressure)
                .all(|d| d.message.starts_with("loop '")),
            "{}",
            render(&diags)
        );
    }
}
