//! Dependence-graph analyses: transitively-dominated edges (A202), the
//! zero-capacity resource check (A103, in [`crate::machine_lints`]), and
//! RecMII attribution (A203) naming the critical recurrence cycle(s).

use machine::MachineDescription;
use swp::{DepGraph, NodeKind, SccClosure};

use crate::diag::{Diagnostic, LintCode};

/// Cap on per-edge / per-node note lines attached to one diagnostic.
const MAX_NOTES: usize = 8;

/// Runs every graph lint: A103 (zero-capacity resources), A202
/// (dominated edges), A203 (RecMII attribution).
pub fn lint_graph(g: &DepGraph, mach: &MachineDescription) -> Vec<Diagnostic> {
    let mut diags = crate::machine_lints::check_graph_resources(g, mach);
    diags.extend(dominated_edge_lint(g));
    diags.extend(recmii_attribution(g));
    diags
}

fn node_label(g: &DepGraph, n: swp::NodeId) -> String {
    match &g.node(n).kind {
        NodeKind::Op(op) => format!("{n} '{op}'"),
        NodeKind::Cond(c) => format!("{n} 'if {}'", c.cond),
    }
}

/// A202: edges whose constraint is strictly implied by another path.
/// Detection reuses [`swp::dominated_edges`] (the same analysis the
/// `prune_dominated` build option applies); here it only *reports*.
pub fn dominated_edge_lint(g: &DepGraph) -> Vec<Diagnostic> {
    let analysis = swp::dominated_edges(g);
    let ids: Vec<usize> = analysis.dominated_ids().collect();
    if ids.is_empty() {
        return Vec::new();
    }
    let mut d = Diagnostic::new(
        LintCode::DominatedEdges,
        format!(
            "{} of {} dependence edge(s) are transitively dominated (removable \
             without changing the schedulable set)",
            ids.len(),
            g.edges().len()
        ),
    )
    .with_note(
        "enable BuildOptions::prune_dominated (lint --prune) to delete them before \
         scheduling",
    );
    for &i in ids.iter().take(MAX_NOTES) {
        let e = &g.edges()[i];
        d.notes.push(format!(
            "edge {} -> {} ({}, omega={}, d={}) is dominated",
            e.from, e.to, e.kind, e.omega, e.delay
        ));
    }
    if ids.len() > MAX_NOTES {
        d.notes.push(format!("… and {} more", ids.len() - MAX_NOTES));
    }
    vec![d]
}

/// A203: names the recurrence circuit(s) that bind the recurrence lower
/// bound on the initiation interval — the paper's critical cycles (§2.2's
/// precedence-constrained components; see also the empirical role they
/// play in §5's evaluation). One diagnostic per critical component,
/// listing the zero-margin nodes and the edges lying on a bound-achieving
/// cycle.
pub fn recmii_attribution(g: &DepGraph) -> Vec<Diagnostic> {
    let scc = swp::tarjan(g);
    let mut closures: Vec<SccClosure> = Vec::new();
    for c in 0..scc.len() {
        let nontrivial = scc.members[c].len() > 1 || {
            let n = scc.members[c][0];
            g.succ_edges(n).any(|e| e.to == n)
        };
        if nontrivial {
            closures.push(SccClosure::compute(g, &scc, c));
        }
    }
    let Ok(bound) = swp::rec_mii(&closures) else {
        // An illegal zero-omega positive-delay cycle: the scheduler
        // rejects such graphs with its own structured error; attribution
        // has nothing meaningful to say.
        return Vec::new();
    };
    if bound == 0 {
        return Vec::new();
    }
    let bound = bound as i64;

    let mut diags = Vec::new();
    for cl in &closures {
        if cl.recurrence_mii() != Some(bound) {
            continue;
        }
        // Nodes on a bound-achieving cycle: their self-distance set
        // contains an entry with ceil(d / omega) == bound.
        let critical: Vec<_> = cl
            .members
            .iter()
            .copied()
            .filter(|&n| cl.dist(n, n).cycle_bound() == Some(bound))
            .collect();
        // Edges on a bound-achieving cycle: closing the edge with a path
        // back from its head to its tail reaches the bound.
        let mut binding: Vec<String> = Vec::new();
        let mut n_binding = 0usize;
        for e in g.edges() {
            if !cl.contains(e.from) || !cl.contains(e.to) {
                continue;
            }
            let closes = if e.from == e.to {
                e.omega > 0 && div_ceil(e.delay, e.omega as i64) == bound
            } else {
                cl.dist(e.to, e.from).entries().iter().any(|&(d, o)| {
                    let total_o = o as i64 + e.omega as i64;
                    total_o > 0 && div_ceil(d + e.delay, total_o) == bound
                })
            };
            if closes {
                n_binding += 1;
                if binding.len() < MAX_NOTES {
                    binding.push(format!(
                        "binding edge {} -> {} ({}, omega={}, d={})",
                        e.from, e.to, e.kind, e.omega, e.delay
                    ));
                }
            }
        }
        if n_binding > MAX_NOTES {
            binding.push(format!("… and {} more", n_binding - MAX_NOTES));
        }
        let mut d = Diagnostic::new(
            LintCode::RecMiiAttribution,
            format!(
                "RecMII = {bound}, bound by a recurrence through {} of the \
                 component's {} node(s)",
                critical.len(),
                cl.members.len()
            ),
        );
        for &n in critical.iter().take(MAX_NOTES) {
            d.notes.push(format!("critical node {}", node_label(g, n)));
        }
        if critical.len() > MAX_NOTES {
            d.notes
                .push(format!("… and {} more", critical.len() - MAX_NOTES));
        }
        d.notes.extend(binding);
        diags.push(d);
    }
    diags
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a > 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::test_machine;
    use machine::ReservationTable;
    use swp::{DepEdge, DepKind, Node, NodeId};

    fn leaf() -> Node {
        Node::op(
            ir::Op::new(
                ir::Opcode::FAdd,
                Some(ir::VReg(0)),
                vec![ir::Imm::F(1.0).into(), ir::Imm::F(2.0).into()],
            ),
            ReservationTable::empty(),
        )
    }

    fn edge(from: u32, to: u32, delay: i64, omega: u32) -> DepEdge {
        DepEdge::new(NodeId(from), NodeId(to), omega, delay, DepKind::True)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn a202_fires_on_transitive_edge() {
        // 0 -> 1 -> 2 with delays 2 and 2, plus a direct 0 -> 2 with
        // delay 1: the direct edge is dominated.
        let mut g = DepGraph::new();
        for _ in 0..3 {
            g.add_node(leaf());
        }
        g.add_edge(edge(0, 1, 2, 0));
        g.add_edge(edge(1, 2, 2, 0));
        g.add_edge(edge(0, 2, 1, 0));
        let diags = dominated_edge_lint(&g);
        assert_eq!(codes(&diags), vec!["A202"]);
        assert!(diags[0].message.starts_with("1 of 3"), "{diags:?}");
        assert!(
            diags[0].notes.iter().any(|n| n.contains("n0 -> n2")),
            "{diags:?}"
        );
    }

    #[test]
    fn a202_silent_on_thin_graph() {
        let mut g = DepGraph::new();
        for _ in 0..2 {
            g.add_node(leaf());
        }
        g.add_edge(edge(0, 1, 2, 0));
        assert!(dominated_edge_lint(&g).is_empty());
    }

    #[test]
    fn a203_names_the_critical_cycle() {
        // Component {0,1}: cycle 0 -> 1 -> 0 with total delay 5 over one
        // iteration (RecMII 5). Separate slack cycle at node 2 (RecMII 2)
        // must not be attributed.
        let mut g = DepGraph::new();
        for _ in 0..3 {
            g.add_node(leaf());
        }
        g.add_edge(edge(0, 1, 3, 0));
        g.add_edge(edge(1, 0, 2, 1));
        g.add_edge(edge(2, 2, 2, 1));
        let diags = recmii_attribution(&g);
        assert_eq!(codes(&diags), vec!["A203"]);
        let d = &diags[0];
        assert!(d.message.contains("RecMII = 5"), "{d}");
        assert!(d.notes.iter().any(|n| n.contains("critical node n0")), "{d}");
        assert!(d.notes.iter().any(|n| n.contains("critical node n1")), "{d}");
        assert!(
            !d.notes.iter().any(|n| n.contains("node n2")),
            "slack cycle must not be attributed: {d}"
        );
        assert!(
            d.notes.iter().any(|n| n.contains("binding edge n0 -> n1")),
            "{d}"
        );
        assert!(
            d.notes.iter().any(|n| n.contains("binding edge n1 -> n0")),
            "{d}"
        );
    }

    #[test]
    fn a203_self_edge_accumulator() {
        let mut g = DepGraph::new();
        g.add_node(leaf());
        g.add_edge(edge(0, 0, 2, 1));
        let diags = recmii_attribution(&g);
        assert_eq!(codes(&diags), vec!["A203"]);
        assert!(diags[0].message.contains("RecMII = 2"), "{diags:?}");
        assert!(
            diags[0].notes.iter().any(|n| n.contains("binding edge n0 -> n0")),
            "{diags:?}"
        );
    }

    #[test]
    fn a203_silent_on_acyclic_graph() {
        let mut g = DepGraph::new();
        for _ in 0..2 {
            g.add_node(leaf());
        }
        g.add_edge(edge(0, 1, 4, 0));
        assert!(recmii_attribution(&g).is_empty());
    }

    #[test]
    fn lint_graph_composes_all_passes() {
        let m = test_machine();
        let mut g = DepGraph::new();
        for _ in 0..3 {
            g.add_node(leaf());
        }
        g.add_edge(edge(0, 1, 2, 0));
        g.add_edge(edge(1, 2, 2, 0));
        g.add_edge(edge(0, 2, 1, 0));
        g.add_edge(edge(2, 0, 1, 1));
        let diags = lint_graph(&g, &m);
        let cs = codes(&diags);
        assert!(cs.contains(&"A202"), "{diags:?}");
        assert!(cs.contains(&"A203"), "{diags:?}");
        assert!(!cs.contains(&"A103"), "{diags:?}");
    }
}
