//! Lints over the scheduling daemon's cache counters (A5xx).
//!
//! The daemon (`swp::service`) carries a standing invariant: a cache hit
//! is byte-identical to a fresh compile of the same request, enforced by
//! a sampling revalidator. [`cache_lint`] turns the daemon's
//! [`CacheStats`] snapshot into diagnostics so the same reporting path
//! that surfaces scheduler findings (`bench --bin lint`, JSON output,
//! severity gating) also surfaces service health.

use swp::cache::CacheStats;

use crate::diag::{Diagnostic, LintCode};

/// Lints a cache-statistics snapshot.
///
/// * **A501** (error) — the revalidator observed at least one hit whose
///   cached bytes differ from a fresh compile. This is a determinism
///   bug, never an acceptable steady state.
/// * **A502** (info) — behaviour summary: hit rate, isomorphic
///   near-misses, insert/evict traffic, revalidation coverage. Emitted
///   whenever the cache has seen at least one lookup.
pub fn cache_lint(stats: &CacheStats) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if stats.revalidation_failures > 0 {
        out.push(
            Diagnostic::new(
                LintCode::CacheRevalidationFailure,
                format!(
                    "{} of {} revalidated cache hits differed from a fresh compile",
                    stats.revalidation_failures, stats.revalidations
                ),
            )
            .with_note(
                "the cache key under-identifies requests or compilation is \
                 nondeterministic; every hit must be byte-identical to a fresh compile",
            ),
        );
    }
    let lookups = stats.hits + stats.misses;
    if lookups > 0 {
        out.push(
            Diagnostic::new(
                LintCode::CacheSummary,
                format!(
                    "schedule cache: {:.1}% hit rate over {} lookups",
                    100.0 * stats.hit_rate(),
                    lookups
                ),
            )
            .with_note(format!(
                "hits={} misses={} canon_near_misses={} insertions={} evictions={} \
                 revalidations={}",
                stats.hits,
                stats.misses,
                stats.canon_near_misses,
                stats.insertions,
                stats.evictions,
                stats.revalidations,
            )),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn clean_stats_yield_only_the_summary() {
        let stats = CacheStats {
            hits: 90,
            misses: 10,
            revalidations: 5,
            ..Default::default()
        };
        let diags = cache_lint(&stats);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::CacheSummary);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("90.0% hit rate"), "{}", diags[0].message);
    }

    #[test]
    fn revalidation_failure_is_an_error() {
        let stats = CacheStats {
            hits: 4,
            misses: 1,
            revalidations: 4,
            revalidation_failures: 1,
            ..Default::default()
        };
        let diags = cache_lint(&stats);
        assert_eq!(diags[0].code, LintCode::CacheRevalidationFailure);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("1 of 4"), "{}", diags[0].message);
    }

    #[test]
    fn untouched_cache_is_silent() {
        assert!(cache_lint(&CacheStats::default()).is_empty());
    }
}
