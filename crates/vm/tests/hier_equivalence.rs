//! End-to-end equivalence for loops containing conditionals —
//! hierarchical reduction (Part II of the paper) under the simulator.

use ir::{CmpPred, Op, Opcode, Program, ProgramBuilder, TripCount, Type, Value};
use machine::presets::{test_machine, toy_vector, warp_cell};
use machine::MachineDescription;
use swp::{CompileOptions, NotPipelined};
use vm::{run_checked, RunInput};

fn machines() -> Vec<MachineDescription> {
    vec![warp_cell(), test_machine(), toy_vector()]
}

fn check_on_all(p: &Program, input: &RunInput) {
    for m in machines() {
        for pipeline in [true, false] {
            for (hierarchical, fuse_epilog) in [(true, true), (true, false), (false, true)] {
                let opts = CompileOptions {
                    pipeline,
                    hierarchical,
                    fuse_epilog,
                    ..Default::default()
                };
                if let Err(e) = run_checked(p, &m, &opts, input) {
                    panic!(
                        "program {} on {} (pipeline={pipeline}, hier={hierarchical}, \
                         fuse={fuse_epilog}): {e}",
                        p.name,
                        m.name()
                    );
                }
            }
        }
    }
}

fn ramp(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32) * 0.75 - 3.0).collect()
}

/// Clip negative values to zero: the classic data-dependent branch.
fn clip_program(n: u32) -> Program {
    let mut b = ProgramBuilder::new(format!("clip{n}"));
    let a = b.array("a", n.max(1));
    b.for_counted(TripCount::Const(n), |b, i| {
        let addr = b.elem_addr(a, i.into(), 1, 0);
        let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
        let c = b.fcmp(CmpPred::Lt, x.into(), 0.0f32.into());
        b.if_else(
            c,
            |b| {
                b.store(addr.into(), 0.0f32.into(), ir::MemRef::affine(a, 1, 0));
            },
            |b| {
                let y = b.fmul(x.into(), 2.0f32.into());
                b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
            },
        );
    });
    b.finish()
}

#[test]
fn clip_loop_pipelines_and_matches() {
    for n in [0u32, 1, 2, 3, 5, 8, 16, 33] {
        let p = clip_program(n);
        let input = RunInput {
            mem: ramp(n.max(1) as usize),
            ..Default::default()
        };
        check_on_all(&p, &input);
    }
}

#[test]
fn clip_loop_actually_pipelined() {
    let p = clip_program(64);
    let compiled = swp::compile(&p, &warp_cell(), &CompileOptions::default()).unwrap();
    let r = &compiled.reports[0];
    assert!(r.has_conditional);
    assert!(
        r.ii.is_some(),
        "conditional loop should pipeline via hierarchical reduction: {:?}",
        r.not_pipelined
    );
    // Without hierarchical reduction it must NOT pipeline.
    let compiled = swp::compile(
        &p,
        &warp_cell(),
        &CompileOptions {
            hierarchical: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        compiled.reports[0].not_pipelined,
        Some(NotPipelined::ControlFlow)
    );
}

#[test]
fn one_armed_conditional() {
    // Accumulate only positive values (THEN arm only).
    let mut b = ProgramBuilder::new("possum");
    let a = b.array("a", 24);
    let out = b.array("out", 1);
    let acc = b.fconst(0.0);
    b.for_counted(TripCount::Const(24), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let c = b.fcmp(CmpPred::Gt, x.into(), 0.0f32.into());
        b.if_then(c, |b| {
            b.push_op(Op::new(Opcode::FAdd, Some(acc), vec![acc.into(), x.into()]));
        });
    });
    b.store_fixed(out, 0, acc.into());
    let p = b.finish();
    let input = RunInput {
        mem: ramp(25),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn both_arms_define_same_variable() {
    // y defined in both arms, used after the conditional inside the loop.
    let mut b = ProgramBuilder::new("absval");
    let a = b.array("a", 20);
    let o = b.array("o", 20);
    b.for_counted(TripCount::Const(20), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let c = b.fcmp(CmpPred::Lt, x.into(), 0.0f32.into());
        let y = b.named_reg(Type::F32, "y");
        b.if_else(
            c,
            |b| {
                let t = b.fneg(x.into());
                b.copy_to(y, t.into());
            },
            |b| {
                b.copy_to(y, x.into());
            },
        );
        let z = b.fadd(y.into(), 1.0f32.into());
        b.store_elem(o, i.into(), 1, 0, z.into());
    });
    let p = b.finish();
    let input = RunInput {
        mem: ramp(40),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn conditional_with_runtime_trip_count() {
    let mut b = ProgramBuilder::new("clip_rt");
    let a = b.array("a", 48);
    let n = b.named_reg(Type::I32, "n");
    b.for_counted(TripCount::Reg(n), |b, i| {
        let addr = b.elem_addr(a, i.into(), 1, 0);
        let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
        let c = b.fcmp(CmpPred::Lt, x.into(), 0.0f32.into());
        b.if_else(
            c,
            |b| {
                b.store(addr.into(), 0.0f32.into(), ir::MemRef::affine(a, 1, 0));
            },
            |b| {
                let y = b.fadd(x.into(), 1.0f32.into());
                b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
            },
        );
    });
    let p = b.finish();
    for trip in [0i32, 1, 2, 4, 7, 13, 48] {
        let input = RunInput {
            mem: ramp(48),
            regs: vec![(n, Value::I(trip))],
            ..Default::default()
        };
        check_on_all(&p, &input);
    }
}

#[test]
fn nested_conditionals_in_loop() {
    // Three-way classification via nested ifs.
    let mut b = ProgramBuilder::new("classify");
    let a = b.array("a", 30);
    let o = b.array("o", 30);
    b.for_counted(TripCount::Const(30), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let neg = b.fcmp(CmpPred::Lt, x.into(), 0.0f32.into());
        let y = b.named_reg(Type::F32, "y");
        b.if_else(
            neg,
            |b| {
                b.copy_to(y, (-1.0f32).into());
            },
            |b| {
                let big = b.fcmp(CmpPred::Gt, x.into(), 10.0f32.into());
                b.if_else(
                    big,
                    |b| {
                        b.copy_to(y, 1.0f32.into());
                    },
                    |b| {
                        b.copy_to(y, 0.0f32.into());
                    },
                );
            },
        );
        b.store_elem(o, i.into(), 1, 0, y.into());
    });
    let p = b.finish();
    let mut mem = ramp(60);
    mem[7] = 25.0;
    mem[13] = 11.5;
    let input = RunInput {
        mem,
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn two_conditionals_in_one_body() {
    let mut b = ProgramBuilder::new("twoifs");
    let a = b.array("a", 26);
    let o = b.array("o", 26);
    b.for_counted(TripCount::Const(26), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let c1 = b.fcmp(CmpPred::Lt, x.into(), 0.0f32.into());
        let y = b.named_reg(Type::F32, "y");
        b.if_else(
            c1,
            |b| {
                let t = b.fneg(x.into());
                b.copy_to(y, t.into());
            },
            |b| {
                b.copy_to(y, x.into());
            },
        );
        let c2 = b.fcmp(CmpPred::Gt, y.into(), 2.0f32.into());
        let z = b.named_reg(Type::F32, "z");
        b.if_else(
            c2,
            |b| {
                let t = b.fmul(y.into(), 0.5f32.into());
                b.copy_to(z, t.into());
            },
            |b| {
                b.copy_to(z, y.into());
            },
        );
        b.store_elem(o, i.into(), 1, 0, z.into());
    });
    let p = b.finish();
    let input = RunInput {
        mem: ramp(52),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn conditional_accumulator_recurrence() {
    // The recurrence flows through the conditional: pipelining is bounded
    // but must stay correct.
    let mut b = ProgramBuilder::new("condacc");
    let a = b.array("a", 18);
    let out = b.array("out", 1);
    let acc = b.fconst(1.0);
    b.for_counted(TripCount::Const(18), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let c = b.fcmp(CmpPred::Gt, x.into(), 0.0f32.into());
        b.if_else(
            c,
            |b| {
                b.push_op(Op::new(Opcode::FAdd, Some(acc), vec![acc.into(), x.into()]));
            },
            |b| {
                b.push_op(Op::new(
                    Opcode::FMul,
                    Some(acc),
                    vec![acc.into(), 0.5f32.into()],
                ));
            },
        );
    });
    b.store_fixed(out, 0, acc.into());
    let p = b.finish();
    let input = RunInput {
        mem: ramp(19),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn queue_ops_inside_conditional() {
    // send() only for large values — conditional queue pushes stay ordered.
    let mut b = ProgramBuilder::new("condsend");
    let a = b.array("a", 22);
    b.for_counted(TripCount::Const(22), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let c = b.fcmp(CmpPred::Gt, x.into(), 0.0f32.into());
        b.if_then(c, |b| {
            b.qpush(x.into());
        });
    });
    let p = b.finish();
    let input = RunInput {
        mem: ramp(22),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn exclusive_cond_mode_matches_and_costs_more() {
    // §3.1's fallback mode: all resources marked consumed. Still correct,
    // never a smaller interval than the union mode.
    use swp::CondMode;
    let p = clip_program(40);
    let input = RunInput {
        mem: ramp(40),
        ..Default::default()
    };
    let m = warp_cell();
    let union = CompileOptions::default();
    let excl = CompileOptions {
        cond_mode: CondMode::Exclusive,
        ..Default::default()
    };
    run_checked(&p, &m, &excl, &input).expect("exclusive mode is sound");
    let cu = swp::compile(&p, &m, &union).unwrap();
    let ce = swp::compile(&p, &m, &excl).unwrap();
    let iiu = cu.reports[0].ii;
    match (iiu, ce.reports[0].ii) {
        (Some(a), Some(b)) => assert!(b >= a, "exclusive {b} vs union {a}"),
        // Exclusive mode may refuse to pipeline outright; that is the
        // documented cost of the conservative mode.
        (Some(_), None) | (None, None) => {}
        (None, Some(_)) => panic!("exclusive cannot pipeline when union cannot"),
    }
}
