//! End-to-end equivalence: compiled (pipelined) VLIW code must produce
//! bit-identical memory and queue results to the sequential reference
//! interpreter, across machines, loop shapes and trip counts.

use ir::{CmpPred, Op, Opcode, Program, ProgramBuilder, TripCount, Type, Value, VReg};
use machine::presets::{sequential, test_machine, toy_vector, warp_cell};
use machine::MachineDescription;
use swp::{CompileOptions, IiSearch, Priority, SchedOptions, UnrollPolicy};
use vm::{run_checked, RunInput};

fn machines() -> Vec<MachineDescription> {
    vec![warp_cell(), test_machine(), toy_vector(), sequential()]
}

fn check_on_all(p: &Program, input: &RunInput) {
    for m in machines() {
        for pipeline in [true, false] {
            let opts = CompileOptions {
                pipeline,
                ..Default::default()
            };
            let r = run_checked(p, &m, &opts, input);
            if let Err(e) = r {
                panic!(
                    "program {} on {} (pipeline={pipeline}): {e}",
                    p.name,
                    m.name()
                );
            }
        }
    }
}

fn vector_increment(n: u32) -> Program {
    let mut b = ProgramBuilder::new(format!("vinc{n}"));
    let a = b.array("a", n.max(1));
    b.for_counted(TripCount::Const(n), |b, i| {
        let addr = b.elem_addr(a, i.into(), 1, 0);
        let x = b.load(addr.into(), ir::MemRef::affine(a, 1, 0));
        let y = b.fadd(x.into(), 1.0f32.into());
        b.store(addr.into(), y.into(), ir::MemRef::affine(a, 1, 0));
    });
    b.finish()
}

fn ramp(n: usize) -> Vec<f32> {
    (0..n).map(|i| i as f32 * 0.5 + 1.0).collect()
}

#[test]
fn vector_increment_all_trip_counts() {
    // Exercise every prolog/kernel/epilog boundary case: 0, 1, tiny,
    // around the stage count, around multiples of the unroll factor.
    for n in [0u32, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 13, 17, 31, 64] {
        let p = vector_increment(n);
        let input = RunInput {
            mem: ramp(n.max(1) as usize),
            ..Default::default()
        };
        check_on_all(&p, &input);
    }
}

#[test]
fn runtime_trip_counts() {
    let mut b = ProgramBuilder::new("vinc_rt");
    let _a = b.array("a", 64);
    let n = b.named_reg(Type::I32, "n");
    b.for_loop(TripCount::Reg(n), |b| {
        // A counter managed by hand so the body sees a recurrence.
        // (for_counted would hide `n` behind the closure.)
        let x = b.qpop();
        let y = b.fmul(x.into(), 2.0f32.into());
        b.qpush(y.into());
    });
    let p = b.finish();
    for trip in [0i32, -5, 1, 2, 3, 5, 8, 20, 33] {
        let input = RunInput {
            input: (0..trip.max(0)).map(|i| i as f32).collect(),
            regs: vec![(n, Value::I(trip))],
            ..Default::default()
        };
        check_on_all(&p, &input);
    }
}

#[test]
fn runtime_trip_count_with_memory() {
    let mut b = ProgramBuilder::new("axpy_rt");
    let x = b.array("x", 40);
    let y = b.array("y", 40);
    let n = b.named_reg(Type::I32, "n");
    b.for_counted(TripCount::Reg(n), |b, i| {
        let xi = b.load_elem(x, i.into(), 1, 0);
        let yi = b.load_elem(y, i.into(), 1, 0);
        let s = b.fmul(xi.into(), 3.0f32.into());
        let t = b.fadd(s.into(), yi.into());
        b.store_elem(y, i.into(), 1, 0, t.into());
    });
    let p = b.finish();
    for trip in [0i32, 1, 2, 5, 7, 16, 39, 40] {
        let mut mem = ramp(80);
        mem[40] = -3.0;
        let input = RunInput {
            mem,
            regs: vec![(n, Value::I(trip))],
            ..Default::default()
        };
        check_on_all(&p, &input);
    }
}

#[test]
fn accumulator_recurrence() {
    let mut b = ProgramBuilder::new("dot");
    let x = b.array("x", 32);
    let y = b.array("y", 32);
    let out = b.array("out", 1);
    let acc = b.fconst(0.0);
    b.for_counted(TripCount::Const(32), |b, i| {
        let xi = b.load_elem(x, i.into(), 1, 0);
        let yi = b.load_elem(y, i.into(), 1, 0);
        let prod = b.fmul(xi.into(), yi.into());
        b.push_op(Op::new(Opcode::FAdd, Some(acc), vec![acc.into(), prod.into()]));
    });
    b.store_fixed(out, 0, acc.into());
    let p = b.finish();
    let input = RunInput {
        mem: ramp(65),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn cross_iteration_memory_recurrence() {
    // a[i] = a[i-1] * b[i] — a genuine loop-carried memory dependence.
    let mut b = ProgramBuilder::new("scan");
    let a = b.array("a", 33);
    let bb = b.array("b", 32);
    b.for_counted(TripCount::Const(32), |b, i| {
        let prev = b.load_elem(a, i.into(), 1, 0); // a[i] (offset 0 = a[i-1+1]);
        let bi = b.load_elem(bb, i.into(), 1, 0);
        let prod = b.fmul(prev.into(), bi.into());
        b.store_elem(a, i.into(), 1, 1, prod.into()); // a[i+1]
    });
    let p = b.finish();
    let mut mem = vec![0.0f32; 65];
    mem[0] = 1.0;
    for (i, w) in mem[33..65].iter_mut().enumerate() {
        *w = 1.0 + (i as f32) * 0.01;
    }
    let input = RunInput {
        mem,
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn stencil_reads_neighbors() {
    // out[i] = (in[i-1] + in[i] + in[i+1]) / 3 over the interior.
    let mut b = ProgramBuilder::new("stencil");
    let input_arr = b.array("in", 34);
    let out = b.array("out", 32);
    let third = b.fconst(1.0 / 3.0);
    b.for_counted(TripCount::Const(32), |b, i| {
        let l = b.load_elem(input_arr, i.into(), 1, 0);
        let c = b.load_elem(input_arr, i.into(), 1, 1);
        let r = b.load_elem(input_arr, i.into(), 1, 2);
        let s1 = b.fadd(l.into(), c.into());
        let s2 = b.fadd(s1.into(), r.into());
        let avg = b.fmul(s2.into(), third.into());
        b.store_elem(out, i.into(), 1, 0, avg.into());
    });
    let p = b.finish();
    let input = RunInput {
        mem: ramp(66),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn queue_pipeline_preserves_order() {
    let mut b = ProgramBuilder::new("qorder");
    b.for_counted(TripCount::Const(20), |b, _| {
        let x = b.qpop();
        let y = b.qpop();
        let s = b.fadd(x.into(), y.into());
        let d = b.fsub(x.into(), y.into());
        b.qpush(s.into());
        b.qpush(d.into());
    });
    let p = b.finish();
    let input = RunInput {
        input: (0..40).map(|i| i as f32).collect(),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn nested_loops() {
    // Row sums of an 8x8 matrix: outer loop not pipelined, inner pipelined.
    let mut b = ProgramBuilder::new("rowsum");
    let m = b.array("m", 64);
    let out = b.array("out", 8);
    b.for_counted(TripCount::Const(8), |b, r| {
        let acc = b.fconst(0.0);
        let row = b.mul(r.into(), 8i32.into());
        b.for_counted(TripCount::Const(8), |b, c| {
            let idx = b.add(row.into(), c.into());
            let base = b.base_of(m) as i32;
            let addr = b.add(idx.into(), base.into());
            let x = b.load(addr.into(), ir::MemRef::unknown(m));
            b.push_op(Op::new(Opcode::FAdd, Some(acc), vec![acc.into(), x.into()]));
        });
        b.store_elem(out, r.into(), 1, 0, acc.into());
    });
    let p = b.finish();
    let input = RunInput {
        mem: ramp(72),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn conditional_outside_loop() {
    let mut b = ProgramBuilder::new("cond");
    let out = b.array("out", 2);
    let x = b.fconst(4.0);
    let c = b.fcmp(CmpPred::Gt, x.into(), 2.0f32.into());
    b.if_else(
        c,
        |b| {
            let v = b.fmul(x.into(), 10.0f32.into());
            b.store_fixed(out, 0, v.into());
        },
        |b| {
            let v = b.fneg(x.into());
            b.store_fixed(out, 0, v.into());
        },
    );
    b.store_fixed(out, 1, x.into());
    let p = b.finish();
    check_on_all(&p, &RunInput::default());
}

#[test]
fn live_out_temporary_copied_back() {
    // The last iteration's temporary is read after the loop: exercises
    // the modulo-variable-expansion copy-back path.
    let mut b = ProgramBuilder::new("liveout");
    let a = b.array("a", 16);
    let out = b.array("out", 1);
    let mut last = None;
    b.for_counted(TripCount::Const(16), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let y = b.fmul(x.into(), x.into());
        b.store_elem(a, i.into(), 1, 0, y.into());
        last = Some(y);
    });
    let last = last.expect("loop body ran");
    b.store_fixed(out, 0, last.into());
    let p = b.finish();
    let input = RunInput {
        mem: ramp(17),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn unroll_policies_agree() {
    let p = vector_increment(37);
    let input = RunInput {
        mem: ramp(37),
        ..Default::default()
    };
    for policy in [UnrollPolicy::MinCodeSize, UnrollPolicy::MinRegisters] {
        let opts = CompileOptions {
            unroll_policy: policy,
            ..Default::default()
        };
        run_checked(&p, &warp_cell(), &opts, &input)
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
    }
}

#[test]
fn search_and_priority_variants_agree() {
    let p = vector_increment(29);
    let input = RunInput {
        mem: ramp(29),
        ..Default::default()
    };
    for search in [IiSearch::Linear, IiSearch::Binary] {
        for priority in [Priority::Height, Priority::SourceOrder] {
            let opts = CompileOptions {
                sched: SchedOptions {
                    search,
                    priority,
                    ..Default::default()
                },
                ..Default::default()
            };
            run_checked(&p, &test_machine(), &opts, &input)
                .unwrap_or_else(|e| panic!("{search:?}/{priority:?}: {e}"));
        }
    }
}

#[test]
fn pipelined_beats_unpipelined_on_throughput() {
    // The headline claim: software pipelining approaches one iteration per
    // II, far better than the drained unpipelined loop.
    let p = vector_increment(512);
    let input = RunInput {
        mem: ramp(512),
        ..Default::default()
    };
    let m = warp_cell();
    let fast = run_checked(&p, &m, &CompileOptions::default(), &input).unwrap();
    let slow = run_checked(
        &p,
        &m,
        &CompileOptions {
            pipeline: false,
            ..Default::default()
        },
        &input,
    )
    .unwrap();
    assert!(
        fast.vm_stats.cycles * 3 < slow.vm_stats.cycles,
        "pipelined {} vs unpipelined {} cycles",
        fast.vm_stats.cycles,
        slow.vm_stats.cycles
    );
}

#[test]
fn reports_expose_mii_and_ii() {
    let p = vector_increment(100);
    let compiled = swp::compile(&p, &warp_cell(), &CompileOptions::default()).unwrap();
    assert_eq!(compiled.reports.len(), 1);
    let r = &compiled.reports[0];
    assert!(r.ii.is_some());
    assert!(r.ii.unwrap() >= r.mii());
    assert!(r.efficiency() > 0.0 && r.efficiency() <= 1.0);
}

#[test]
fn trip_counter_register_not_clobbered_elsewhere() {
    // Two sequential loops: the second must not be affected by the first's
    // counter bookkeeping.
    let mut b = ProgramBuilder::new("two_loops");
    let a = b.array("a", 16);
    b.for_counted(TripCount::Const(16), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let y = b.fadd(x.into(), 1.0f32.into());
        b.store_elem(a, i.into(), 1, 0, y.into());
    });
    b.for_counted(TripCount::Const(16), |b, i| {
        let x = b.load_elem(a, i.into(), 1, 0);
        let y = b.fmul(x.into(), 2.0f32.into());
        b.store_elem(a, i.into(), 1, 0, y.into());
    });
    let p = b.finish();
    let input = RunInput {
        mem: ramp(16),
        ..Default::default()
    };
    check_on_all(&p, &input);
}

#[test]
fn sequential_machine_degenerates_gracefully() {
    // On the one-unit machine every ResMII equals the op count; pipelining
    // yields ii == body length, still correct.
    let p = vector_increment(10);
    let input = RunInput {
        mem: ramp(10),
        ..Default::default()
    };
    let r = run_checked(&p, &sequential(), &CompileOptions::default(), &input).unwrap();
    assert!(r.vm_stats.cycles > 0);
}

/// Helper: expose VReg for tests constructing raw ops.
#[allow(dead_code)]
fn unused(_: VReg) {}
