//! Cycle-accurate VLIW simulator and equivalence checker.
//!
//! [`Vm`] executes the object code produced by `swp::compile` under the
//! exact timing model the scheduler assumed (per-class latencies, one word
//! per cycle, in-flight writes surviving jumps). [`run_checked`] runs a
//! program through both the sequential reference interpreter
//! ([`ir::Interp`]) and the simulator and insists on bit-identical memory
//! and output queues — the end-to-end soundness oracle for the compiler.
//!
//! # Examples
//!
//! ```
//! use ir::{ProgramBuilder, TripCount};
//! use machine::presets;
//! use swp::CompileOptions;
//! use vm::{run_checked, RunInput};
//!
//! let mut b = ProgramBuilder::new("scale");
//! let a = b.array("a", 32);
//! b.for_counted(TripCount::Const(32), |b, i| {
//!     let x = b.load_elem(a, i.into(), 1, 0);
//!     let y = b.fmul(x.into(), 3.0f32.into());
//!     b.store_elem(a, i.into(), 1, 0, y.into());
//! });
//! let p = b.finish();
//!
//! let input = RunInput {
//!     mem: (0..32).map(|i| i as f32).collect(),
//!     ..Default::default()
//! };
//! let run = run_checked(&p, &presets::warp_cell(), &CompileOptions::default(), &input).unwrap();
//! assert_eq!(run.mem[4], 12.0);
//! assert!(run.vm_stats.cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod array;
mod check;
mod exec;
mod trace;

pub use array::{run_chain, run_chain2, run_homogeneous, CellSpec, ChainRun};
pub use check::{run_checked, run_checked_compiled, run_vm, run_vm_full, CheckError, CheckedRun, RunInput};
pub use exec::{Vm, VmError, VmMemEvent, VmStats, DEFAULT_FUEL};
pub use trace::{observed_deps, trace_memory, LoopTrace, MemEvent, ObservedDep, SiteInfo, TraceReport};
