//! Multi-cell Warp array simulation.
//!
//! The Warp machine is a *linear array* of cells: each cell's output
//! channel feeds the next cell's input channel, programs are homogeneous,
//! and (per §4.1) "except for a short setup time at the beginning, these
//! programs never stall on input or output". Queues are Kahn-network
//! FIFOs, so running the cells **in sequence** — draining cell `k`
//! completely and handing its output stream to cell `k+1` — produces
//! exactly the same data as a cycle-interleaved execution; only the wall
//! clock differs. For non-stalling homogeneous programs the array's
//! steady-state time equals the slowest cell's time, which is the model
//! the paper itself uses when it reports array rates as 10x the cell rate.

use machine::MachineDescription;
use swp::CompiledProgram;

use crate::check::{run_vm_full, CheckError, RunInput};
use crate::exec::VmStats;

/// One cell's workload: compiled program plus its private memory image
/// and preset registers.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// The cell's compiled program.
    pub compiled: CompiledProgram,
    /// Initial data-memory contents.
    pub mem: Vec<f32>,
    /// Preset registers (e.g. runtime trip counts).
    pub regs: Vec<(ir::VReg, ir::Value)>,
}

/// The result of running a chain of cells.
#[derive(Debug, Clone)]
pub struct ChainRun {
    /// Per-cell simulator statistics, in chain order.
    pub cell_stats: Vec<VmStats>,
    /// The last cell's X output stream.
    pub output: Vec<f32>,
    /// The last cell's Y output stream.
    pub output_y: Vec<f32>,
}

impl ChainRun {
    /// Total floating-point operations across the array.
    pub fn total_flops(&self) -> u64 {
        self.cell_stats.iter().map(|s| s.flops).sum()
    }

    /// Steady-state array makespan: the slowest cell's cycle count (the
    /// paper's non-stalling homogeneous model).
    pub fn makespan_cycles(&self) -> u64 {
        self.cell_stats.iter().map(|s| s.cycles).max().unwrap_or(0)
    }

    /// Aggregate array MFLOPS at the given clock.
    pub fn array_mflops(&self, clock_mhz: f64) -> f64 {
        let cycles = self.makespan_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.total_flops() as f64 / cycles as f64 * clock_mhz
        }
    }
}

/// Runs a linear chain of cells: `external_input` feeds cell 0; each
/// cell's output queue becomes the next cell's input queue.
///
/// # Errors
///
/// Propagates the first cell failure (with its index in the message via
/// the queue-underflow position).
pub fn run_chain(
    cells: &[CellSpec],
    mach: &MachineDescription,
    external_input: Vec<f32>,
) -> Result<ChainRun, CheckError> {
    run_chain2(cells, mach, external_input, Vec::new())
}

/// As [`run_chain`], feeding both channels: each cell's X and Y outputs
/// become the next cell's X and Y inputs (both Warp channels flow down
/// the linear array).
///
/// # Errors
///
/// Propagates the first cell failure.
pub fn run_chain2(
    cells: &[CellSpec],
    mach: &MachineDescription,
    external_x: Vec<f32>,
    external_y: Vec<f32>,
) -> Result<ChainRun, CheckError> {
    let mut x = external_x;
    let mut y = external_y;
    let mut cell_stats = Vec::with_capacity(cells.len());
    for cell in cells {
        let input = RunInput {
            mem: cell.mem.clone(),
            input: x,
            input_y: y,
            regs: cell.regs.clone(),
        };
        let (stats, _, ox, oy) = run_vm_full(&cell.compiled, mach, &input)?;
        cell_stats.push(stats);
        x = ox;
        y = oy;
    }
    Ok(ChainRun {
        cell_stats,
        output: x,
        output_y: y,
    })
}

/// Convenience: a homogeneous array (the Warp configuration) — the same
/// program and register presets on every cell, with per-cell memories.
pub fn run_homogeneous(
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    mems: &[Vec<f32>],
    external_input: Vec<f32>,
) -> Result<ChainRun, CheckError> {
    let cells: Vec<CellSpec> = mems
        .iter()
        .map(|mem| CellSpec {
            compiled: compiled.clone(),
            mem: mem.clone(),
            regs: Vec::new(),
        })
        .collect();
    run_chain(&cells, mach, external_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{ProgramBuilder, TripCount};
    use machine::presets::warp_cell;
    use swp::CompileOptions;

    /// Each cell doubles its stream.
    fn doubler(n: u32) -> CompiledProgram {
        let mut b = ProgramBuilder::new("doubler");
        b.for_counted(TripCount::Const(n), |b, _| {
            let x = b.qpop();
            let y = b.fmul(x.into(), 2.0f32.into());
            b.qpush(y.into());
        });
        let p = b.finish();
        swp::compile(&p, &warp_cell(), &CompileOptions::default()).expect("compiles")
    }

    #[test]
    fn three_cell_chain_composes() {
        let m = warp_cell();
        let c = doubler(16);
        let cells: Vec<CellSpec> = (0..3)
            .map(|_| CellSpec {
                compiled: c.clone(),
                mem: vec![],
                regs: vec![],
            })
            .collect();
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let run = run_chain(&cells, &m, input.clone()).unwrap();
        for (i, v) in run.output.iter().enumerate() {
            assert_eq!(*v, input[i] * 8.0, "three doublings");
        }
        assert_eq!(run.cell_stats.len(), 3);
        assert!(run.makespan_cycles() > 0);
    }

    #[test]
    fn array_mflops_aggregates() {
        let m = warp_cell();
        let c = doubler(64);
        let run = run_homogeneous(&c, &m, &[vec![], vec![]], (0..64).map(|i| i as f32).collect())
            .unwrap();
        // Two cells do 2x the flops of one in the same steady-state time.
        let single = run.cell_stats[0];
        assert!(run.array_mflops(5.0) > 1.5 * single.mflops(5.0));
    }

    #[test]
    fn starving_chain_reports_underflow() {
        let m = warp_cell();
        let c = doubler(16);
        let cells = vec![CellSpec {
            compiled: c,
            mem: vec![],
            regs: vec![],
        }];
        let err = run_chain(&cells, &m, vec![1.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("empty input queue"), "{err}");
    }
}
// (appended tests for the dual-channel chain)
#[cfg(test)]
mod channel_tests {
    use super::*;
    use ir::{ProgramBuilder, TripCount};
    use machine::presets::warp_cell;
    use swp::CompileOptions;

    /// Each cell forwards X unchanged and accumulates a running sum it
    /// appends to Y.
    fn tap(n: u32) -> CompiledProgram {
        let mut b = ProgramBuilder::new("tap");
        let acc = b.fconst(0.0);
        b.for_counted(TripCount::Const(n), |b, _| {
            let x = b.qpop();
            b.qpush(x.into());
            b.push_op(ir::Op::new(
                ir::Opcode::FAdd,
                Some(acc),
                vec![acc.into(), x.into()],
            ));
        });
        // Forward whatever is already on Y, then append our sum. For the
        // test every cell forwards a fixed number of predecessors' values
        // supplied via a register... keep it simple: just append.
        b.qpush_ch(1, acc.into());
        let p = b.finish();
        swp::compile(&p, &warp_cell(), &CompileOptions::default()).expect("compiles")
    }

    #[test]
    fn y_channel_accumulates_down_the_chain() {
        let m = warp_cell();
        let c = tap(8);
        let cells: Vec<CellSpec> = (0..3)
            .map(|_| CellSpec {
                compiled: c.clone(),
                mem: vec![],
                regs: vec![],
            })
            .collect();
        let xs: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let run = run_chain2(&cells, &m, xs.clone(), vec![]).unwrap();
        // X passes through unchanged.
        assert_eq!(run.output, xs);
        // Only the LAST cell's Y output survives sequential chaining —
        // the middle cells' Y pushes are consumed by... no: nothing pops
        // Y here, so each cell's Y input is dropped and replaced. The
        // last cell's Y output is its own sum.
        assert_eq!(run.output_y, vec![36.0]);
    }

    #[test]
    fn forwarding_preserves_y_history() {
        // A cell that forwards one Y value then appends its sum keeps the
        // history alive; external Y seeds the chain.
        let m = warp_cell();
        let mut b = ProgramBuilder::new("fwd");
        let acc = b.fconst(0.0);
        b.for_counted(TripCount::Const(4), |b, _| {
            let x = b.qpop();
            b.qpush(x.into());
            b.push_op(ir::Op::new(
                ir::Opcode::FAdd,
                Some(acc),
                vec![acc.into(), x.into()],
            ));
        });
        let h = b.qpop_ch(1);
        b.qpush_ch(1, h.into());
        b.qpush_ch(1, acc.into());
        let p = b.finish();
        let c = swp::compile(&p, &warp_cell(), &CompileOptions::default()).unwrap();
        let cells: Vec<CellSpec> = (0..2)
            .map(|_| CellSpec {
                compiled: c.clone(),
                mem: vec![],
                regs: vec![],
            })
            .collect();
        let run = run_chain2(&cells, &m, vec![1.0, 2.0, 3.0, 4.0], vec![99.0]).unwrap();
        // Cell 0: forwards 99, appends 10; cell 1: forwards 99 (pops the
        // first), appends 10 — Y = [99? no: cell1 pops 99, pushes 99, 10,
        // but cell0's 10 is LOST (cell1 forwards only one value).
        assert_eq!(run.output_y, vec![99.0, 10.0]);
    }
}
