//! Cycle-accurate execution of VLIW object code.
//!
//! The simulator honors the timing contract documented in `swp::code`:
//!
//! * one [`Word`](swp::Word) per cycle; control transfers add no bubble;
//! * at each cycle boundary the machine first **retires** register writes
//!   due this cycle, then the new word's operations **read** their
//!   sources, then loads read memory, then stores commit, then freshly
//!   issued writes are queued with their latency;
//! * terminators are evaluated at the boundary after the block's last
//!   word (so latency-1 results computed in that word are visible);
//! * in-flight writes survive jumps — software pipelining depends on it.
//!
//! The simulator also *checks* the code: two same-cycle writes to one
//! register, same-cycle conflicting memory accesses, or a register read
//! that observes an uninitialized value are reported as errors rather
//! than silently tolerated. Together with `ir::Interp` equivalence this
//! is the end-to-end soundness oracle for the whole compiler.

use std::collections::VecDeque;
use std::fmt;

use ir::{CmpPred, Imm, InterpError, Op, Opcode, Operand, Value, VReg};
use machine::MachineDescription;
use swp::{Terminator, VliwProgram};

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Machine cycles elapsed (= instruction words executed).
    pub cycles: u64,
    /// Operations issued.
    pub ops: u64,
    /// Floating-point operations issued (MFLOPS numerator).
    pub flops: u64,
}

impl VmStats {
    /// MFLOPS at the given clock (flops per cycle × MHz).
    pub fn mflops(&self, clock_mhz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64 * clock_mhz
        }
    }
}

/// Simulator errors: either a dynamic error from the program itself or a
/// timing/encoding violation introduced by the compiler (a bug).
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// An operation faulted (bad address, empty queue, type confusion).
    Op(InterpError),
    /// Two operations wrote the same register in the same cycle.
    DoubleWrite {
        /// The register.
        reg: VReg,
        /// The cycle.
        cycle: u64,
    },
    /// Two same-cycle memory operations conflicted (two stores to one
    /// address).
    MemRace {
        /// The address.
        addr: u32,
        /// The cycle.
        cycle: u64,
    },
    /// Cycle budget exhausted.
    OutOfFuel,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Op(e) => write!(f, "operation fault: {e}"),
            VmError::DoubleWrite { reg, cycle } => {
                write!(f, "double write to {reg} in cycle {cycle}")
            }
            VmError::MemRace { addr, cycle } => {
                write!(f, "conflicting memory writes to {addr} in cycle {cycle}")
            }
            VmError::OutOfFuel => f.write_str("cycle budget exhausted"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<InterpError> for VmError {
    fn from(e: InterpError) -> Self {
        VmError::Op(e)
    }
}

/// The VLIW simulator.
#[derive(Debug, Clone)]
pub struct Vm<'p> {
    program: &'p VliwProgram,
    machine: &'p MachineDescription,
    regs: Vec<Value>,
    /// Pending register writes: (retire_cycle, reg, value), kept sorted by
    /// retire cycle in a queue per small horizon.
    pending: VecDeque<(u64, VReg, Value)>,
    /// Data memory.
    pub mem: Vec<f32>,
    /// Input queue, channel X.
    pub input: VecDeque<f32>,
    /// Output queue, channel X.
    pub output: Vec<f32>,
    /// Input queue, channel Y.
    pub input_y: VecDeque<f32>,
    /// Output queue, channel Y.
    pub output_y: Vec<f32>,
    /// Statistics so far.
    pub stats: VmStats,
    cycle: u64,
    fuel: u64,
    /// Memory-access trace: `None` (the default) records nothing and costs
    /// one branch per access; `Some` collects every load read and store
    /// commit as [`VmMemEvent`]s.
    mem_trace: Option<Vec<VmMemEvent>>,
}

/// One data-memory access recorded by the simulator's opt-in trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmMemEvent {
    /// Cycle the access happened on.
    pub cycle: u64,
    /// Absolute data-memory word address.
    pub addr: u32,
    /// True for a store commit, false for a load read.
    pub store: bool,
}

/// Default cycle budget.
pub const DEFAULT_FUEL: u64 = 500_000_000;

impl<'p> Vm<'p> {
    /// Creates a simulator for a compiled program.
    pub fn new(program: &'p VliwProgram, machine: &'p MachineDescription) -> Self {
        Vm {
            program,
            machine,
            regs: vec![Value::Undef; program.regs.len()],
            pending: VecDeque::new(),
            mem: vec![0.0; program.mem_size as usize],
            input: VecDeque::new(),
            output: Vec::new(),
            input_y: VecDeque::new(),
            output_y: Vec::new(),
            stats: VmStats::default(),
            cycle: 0,
            fuel: DEFAULT_FUEL,
            mem_trace: None,
        }
    }

    /// Turns on memory-access tracing (off by default; when off, the only
    /// cost is one `Option` check per access).
    pub fn enable_mem_trace(&mut self) {
        self.mem_trace = Some(Vec::new());
    }

    /// The recorded memory accesses, if tracing was enabled.
    pub fn mem_trace(&self) -> Option<&[VmMemEvent]> {
        self.mem_trace.as_deref()
    }

    /// Overrides the cycle budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Presets a register (runtime inputs such as trip counts).
    pub fn set_reg(&mut self, r: VReg, v: Value) {
        self.regs[r.index()] = v;
    }

    /// Reads a register (after execution; pending writes are retired at
    /// halt).
    pub fn reg(&self, r: VReg) -> Value {
        self.regs[r.index()]
    }

    fn retire_due(&mut self) {
        let now = self.cycle;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, r, v) = self.pending.remove(i).expect("index in range");
                self.regs[r.index()] = v;
            } else {
                i += 1;
            }
        }
    }

    fn read_operand(&self, o: Operand) -> Result<Value, VmError> {
        match o {
            Operand::Reg(r) => match self.regs[r.index()] {
                Value::Undef => Err(VmError::Op(InterpError::UndefRead(r))),
                v => Ok(v),
            },
            Operand::Imm(Imm::F(v)) => Ok(Value::F(v)),
            Operand::Imm(Imm::I(v)) => Ok(Value::I(v)),
        }
    }

    fn as_f(&self, v: Value) -> Result<f32, VmError> {
        match v {
            Value::F(x) => Ok(x),
            other => Err(VmError::Op(InterpError::TypeMismatch(format!(
                "expected float, got {other:?}"
            )))),
        }
    }

    fn as_i(&self, v: Value) -> Result<i32, VmError> {
        match v {
            Value::I(x) => Ok(x),
            other => Err(VmError::Op(InterpError::TypeMismatch(format!(
                "expected int, got {other:?}"
            )))),
        }
    }

    fn mem_addr(&self, v: Value) -> Result<usize, VmError> {
        let a = self.as_i(v)? as i64;
        if a < 0 || a as usize >= self.mem.len() {
            return Err(VmError::Op(InterpError::MemOutOfBounds {
                addr: a,
                size: self.mem.len() as u32,
            }));
        }
        Ok(a as usize)
    }

    /// Executes one word: reads, computes, queues writes, applies stores.
    fn exec_word(&mut self, ops: &[Op]) -> Result<(), VmError> {
        // Phase 1: all operations read their sources simultaneously.
        type PendingWrite = Option<(VReg, Value, u32)>;
        type PendingStore = Option<(usize, f32)>;
        let mut results: Vec<(PendingWrite, PendingStore)> = Vec::new();
        let mut loads: Vec<(usize, VReg, u32)> = Vec::new(); // (addr, dst, lat)
        for op in ops {
            self.stats.ops += 1;
            if op.opcode.is_flop() {
                self.stats.flops += 1;
            }
            let lat = self.machine.latency(op.opcode.class());
            match op.opcode {
                Opcode::Load => {
                    let a = self.mem_addr(self.read_operand(op.srcs[0])?)?;
                    loads.push((a, op.dst.expect("load has dst"), lat));
                }
                Opcode::Store => {
                    let a = self.mem_addr(self.read_operand(op.srcs[0])?)?;
                    let v = self.as_f(self.read_operand(op.srcs[1])?)?;
                    results.push((None, Some((a, v))));
                }
                Opcode::QPop => {
                    let q = if op.channel == 0 {
                        &mut self.input
                    } else {
                        &mut self.input_y
                    };
                    let v = q.pop_front().ok_or(VmError::Op(InterpError::QueueEmpty))?;
                    results.push((Some((op.dst.expect("qpop dst"), Value::F(v), lat)), None));
                }
                Opcode::QPush => {
                    let v = self.as_f(self.read_operand(op.srcs[0])?)?;
                    if op.channel == 0 {
                        self.output.push(v);
                    } else {
                        self.output_y.push(v);
                    }
                    results.push((None, None));
                }
                _ => {
                    let v = self.eval_pure(op)?;
                    if let Some(dst) = op.dst {
                        results.push((Some((dst, v, lat)), None));
                    } else {
                        results.push((None, None));
                    }
                }
            }
        }
        // Phase 2: loads read memory (before this cycle's stores commit).
        for (a, dst, lat) in loads {
            let v = Value::F(self.mem[a]);
            if let Some(trace) = &mut self.mem_trace {
                trace.push(VmMemEvent {
                    cycle: self.cycle,
                    addr: a as u32,
                    store: false,
                });
            }
            results.push((Some((dst, v, lat)), None));
        }
        // Phase 3: stores commit; detect same-cycle write races.
        let mut stored: Vec<usize> = Vec::new();
        for (_, st) in &results {
            if let Some((a, v)) = st {
                if stored.contains(a) {
                    return Err(VmError::MemRace {
                        addr: *a as u32,
                        cycle: self.cycle,
                    });
                }
                stored.push(*a);
                if let Some(trace) = &mut self.mem_trace {
                    trace.push(VmMemEvent {
                        cycle: self.cycle,
                        addr: *a as u32,
                        store: true,
                    });
                }
                self.mem[*a] = *v;
            }
        }
        // Phase 4: queue register writes; detect same-cycle retire races.
        for (wr, _) in results {
            if let Some((dst, v, lat)) = wr {
                let retire = self.cycle + lat.max(1) as u64;
                if self
                    .pending
                    .iter()
                    .any(|&(t, r, _)| r == dst && t == retire)
                {
                    return Err(VmError::DoubleWrite {
                        reg: dst,
                        cycle: retire,
                    });
                }
                self.pending.push_back((retire, dst, v));
            }
        }
        Ok(())
    }

    fn eval_pure(&self, op: &Op) -> Result<Value, VmError> {
        use Opcode::*;
        let s = |i: usize| self.read_operand(op.srcs[i]);
        let f = |v: Value| self.as_f(v);
        let ii = |v: Value| self.as_i(v);
        Ok(match op.opcode {
            FAdd => Value::F(f(s(0)?)? + f(s(1)?)?),
            FSub => Value::F(f(s(0)?)? - f(s(1)?)?),
            FMul => Value::F(f(s(0)?)? * f(s(1)?)?),
            FDiv => Value::F(f(s(0)?)? / f(s(1)?)?),
            FSqrt => Value::F(f(s(0)?)?.sqrt()),
            FNeg => Value::F(-f(s(0)?)?),
            FAbs => Value::F(f(s(0)?)?.abs()),
            FMin => Value::F(f(s(0)?)?.min(f(s(1)?)?)),
            FMax => Value::F(f(s(0)?)?.max(f(s(1)?)?)),
            FCmp(p) => Value::I(cmp_eval(p, f(s(0)?)?, f(s(1)?)?)),
            ItoF => Value::F(ii(s(0)?)? as f32),
            FtoI => Value::I(f(s(0)?)? as i32),
            Add => Value::I(ii(s(0)?)?.wrapping_add(ii(s(1)?)?)),
            Sub => Value::I(ii(s(0)?)?.wrapping_sub(ii(s(1)?)?)),
            Mul => Value::I(ii(s(0)?)?.wrapping_mul(ii(s(1)?)?)),
            Div => {
                let d = ii(s(1)?)?;
                if d == 0 {
                    return Err(VmError::Op(InterpError::TypeMismatch(
                        "division by zero".into(),
                    )));
                }
                Value::I(ii(s(0)?)?.wrapping_div(d))
            }
            Rem => {
                let d = ii(s(1)?)?;
                if d == 0 {
                    return Err(VmError::Op(InterpError::TypeMismatch(
                        "remainder by zero".into(),
                    )));
                }
                Value::I(ii(s(0)?)?.wrapping_rem(d))
            }
            And => Value::I(ii(s(0)?)? & ii(s(1)?)?),
            Or => Value::I(ii(s(0)?)? | ii(s(1)?)?),
            Xor => Value::I(ii(s(0)?)? ^ ii(s(1)?)?),
            Shl => Value::I(ii(s(0)?)?.wrapping_shl(ii(s(1)?)? as u32)),
            Shr => Value::I(ii(s(0)?)?.wrapping_shr(ii(s(1)?)? as u32)),
            ICmp(p) => Value::I(cmp_eval(p, ii(s(0)?)?, ii(s(1)?)?)),
            Select => {
                if ii(s(0)?)? != 0 {
                    s(1)?
                } else {
                    s(2)?
                }
            }
            Copy | Const => s(0)?,
            Load | Store | QPop | QPush => unreachable!("handled in exec_word"),
        })
    }

    /// Runs to `Halt`.
    ///
    /// # Errors
    ///
    /// Propagates the first dynamic error or compiler-introduced timing
    /// violation.
    pub fn run(&mut self) -> Result<(), VmError> {
        let mut block = self.program.entry;
        loop {
            let b = self.program.block(block);
            for w in &b.words {
                if self.fuel == 0 {
                    return Err(VmError::OutOfFuel);
                }
                self.fuel -= 1;
                self.retire_due();
                self.exec_word(&w.ops)?;
                self.cycle += 1;
                self.stats.cycles += 1;
            }
            // Boundary after the last word: retire before the terminator
            // reads its condition.
            self.retire_due();
            block = match &b.term {
                Terminator::Fall(t) | Terminator::Jump(t) => *t,
                Terminator::CondJump {
                    cond,
                    nonzero,
                    zero,
                } => {
                    let c = self.as_i(self.read_operand(Operand::Reg(*cond))?)?;
                    if c != 0 {
                        *nonzero
                    } else {
                        *zero
                    }
                }
                Terminator::CountedLoop {
                    counter,
                    dec,
                    back,
                    exit,
                } => {
                    let c = self.as_i(self.read_operand(Operand::Reg(*counter))?)? - dec;
                    self.regs[counter.index()] = Value::I(c);
                    if c > 0 {
                        *back
                    } else {
                        *exit
                    }
                }
                Terminator::Halt => {
                    // Drain outstanding writes so final register state is
                    // observable.
                    while let Some(&(t, _, _)) = self.pending.front() {
                        let _ = t;
                        let (_, r, v) = self.pending.pop_front().expect("nonempty");
                        self.regs[r.index()] = v;
                    }
                    return Ok(());
                }
            };
        }
    }

    /// The current cycle count.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

fn cmp_eval<T: PartialOrd>(p: CmpPred, a: T, b: T) -> i32 {
    p.eval(a, b) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{RegTable, Type};
    use machine::presets::test_machine;
    use swp::{Block, BlockId, Word};

    fn one_block_program(regs: RegTable, words: Vec<Word>) -> VliwProgram {
        let mut b = Block::new("entry");
        b.words = words;
        b.term = Terminator::Halt;
        VliwProgram {
            name: "t".into(),
            regs,
            arrays: vec![],
            mem_size: 16,
            blocks: vec![b],
            entry: BlockId(0),
        }
    }

    #[test]
    fn latency_respected() {
        // fadd at cycle 0 (lat 2), consumer at cycle 2 sees it.
        let m = test_machine();
        let mut regs = RegTable::new();
        let a = regs.alloc(Type::F32);
        let b = regs.alloc(Type::F32);
        let words = vec![
            Word {
                ops: vec![Op::new(
                    Opcode::FAdd,
                    Some(a),
                    vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
                )],
            },
            Word::empty(),
            Word {
                ops: vec![Op::new(
                    Opcode::FAdd,
                    Some(b),
                    vec![a.into(), Imm::F(1.0).into()],
                )],
            },
        ];
        let p = one_block_program(regs, words);
        let mut vm = Vm::new(&p, &m);
        vm.run().unwrap();
        assert_eq!(vm.reg(b), Value::F(4.0));
        assert_eq!(vm.cycles(), 3);
    }

    #[test]
    fn premature_read_sees_undef() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let a = regs.alloc(Type::F32);
        let b = regs.alloc(Type::F32);
        let words = vec![
            Word {
                ops: vec![Op::new(
                    Opcode::FAdd,
                    Some(a),
                    vec![Imm::F(1.0).into(), Imm::F(2.0).into()],
                )],
            },
            // Reads a one cycle too early (lat 2): undefined.
            Word {
                ops: vec![Op::new(
                    Opcode::FAdd,
                    Some(b),
                    vec![a.into(), Imm::F(1.0).into()],
                )],
            },
        ];
        let p = one_block_program(regs, words);
        let mut vm = Vm::new(&p, &m);
        assert!(matches!(
            vm.run(),
            Err(VmError::Op(InterpError::UndefRead(_)))
        ));
    }

    #[test]
    fn same_cycle_read_write_reads_old() {
        // Anti-dependence semantics: a read and a (later-retiring) write in
        // the same cycle — the read sees the old value.
        let m = test_machine();
        let mut regs = RegTable::new();
        let a = regs.alloc(Type::I32);
        let b = regs.alloc(Type::I32);
        let words = vec![
            Word {
                ops: vec![Op::new(Opcode::Const, Some(a), vec![Imm::I(10).into()])],
            },
            Word {
                ops: vec![
                    Op::new(Opcode::Copy, Some(b), vec![a.into()]),
                    Op::new(Opcode::Const, Some(a), vec![Imm::I(99).into()]),
                ],
            },
        ];
        let p = one_block_program(regs, words);
        let mut vm = Vm::new(&p, &m);
        vm.run().unwrap();
        assert_eq!(vm.reg(b), Value::I(10));
        assert_eq!(vm.reg(a), Value::I(99));
    }

    #[test]
    fn mem_trace_off_by_default_and_records_when_enabled() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let words = vec![
            Word {
                ops: vec![Op::new(Opcode::Load, Some(x), vec![Imm::I(3).into()])],
            },
            Word::empty(),
            Word::empty(),
            Word {
                ops: vec![Op::new(Opcode::Store, None, vec![Imm::I(5).into(), x.into()])],
            },
        ];
        let p = one_block_program(regs, words);
        let mut plain = Vm::new(&p, &m);
        plain.mem[3] = 7.0;
        plain.run().unwrap();
        assert!(plain.mem_trace().is_none());

        let mut traced = Vm::new(&p, &m);
        traced.mem[3] = 7.0;
        traced.enable_mem_trace();
        traced.run().unwrap();
        // Identical architectural state, plus the two recorded accesses.
        assert_eq!(plain.mem, traced.mem);
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(
            traced.mem_trace().unwrap(),
            &[
                VmMemEvent {
                    cycle: 0,
                    addr: 3,
                    store: false
                },
                VmMemEvent {
                    cycle: 3,
                    addr: 5,
                    store: true
                },
            ]
        );
    }

    #[test]
    fn counted_loop_iterates() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let n = regs.alloc(Type::I32);
        let acc = regs.alloc(Type::I32);
        let mut init = Block::new("init");
        init.words.push(Word {
            ops: vec![
                Op::new(Opcode::Const, Some(n), vec![Imm::I(5).into()]),
                Op::new(Opcode::Const, Some(acc), vec![Imm::I(0).into()]),
            ],
        });
        init.term = Terminator::Fall(BlockId(1));
        let mut body = Block::new("body");
        body.words.push(Word {
            ops: vec![Op::new(
                Opcode::Add,
                Some(acc),
                vec![acc.into(), Imm::I(3).into()],
            )],
        });
        body.term = Terminator::CountedLoop {
            counter: n,
            dec: 1,
            back: BlockId(1),
            exit: BlockId(2),
        };
        let mut end = Block::new("end");
        end.term = Terminator::Halt;
        let p = VliwProgram {
            name: "t".into(),
            regs,
            arrays: vec![],
            mem_size: 0,
            blocks: vec![init, body, end],
            entry: BlockId(0),
        };
        let mut vm = Vm::new(&p, &m);
        vm.run().unwrap();
        assert_eq!(vm.reg(acc), Value::I(15));
        assert_eq!(vm.cycles(), 6, "init + 5 body words, jumps are free");
    }

    #[test]
    fn cond_jump_selects_path() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let c = regs.alloc(Type::I32);
        let out = regs.alloc(Type::I32);
        let mut entry = Block::new("entry");
        entry.words.push(Word {
            ops: vec![Op::new(Opcode::Const, Some(c), vec![Imm::I(0).into()])],
        });
        entry.term = Terminator::CondJump {
            cond: c,
            nonzero: BlockId(1),
            zero: BlockId(2),
        };
        let mut t_blk = Block::new("then");
        t_blk.words.push(Word {
            ops: vec![Op::new(Opcode::Const, Some(out), vec![Imm::I(1).into()])],
        });
        t_blk.term = Terminator::Jump(BlockId(3));
        let mut e_blk = Block::new("else");
        e_blk.words.push(Word {
            ops: vec![Op::new(Opcode::Const, Some(out), vec![Imm::I(2).into()])],
        });
        e_blk.term = Terminator::Fall(BlockId(3));
        let mut end = Block::new("end");
        end.term = Terminator::Halt;
        let p = VliwProgram {
            name: "t".into(),
            regs,
            arrays: vec![],
            mem_size: 0,
            blocks: vec![entry, t_blk, e_blk, end],
            entry: BlockId(0),
        };
        let mut vm = Vm::new(&p, &m);
        vm.run().unwrap();
        assert_eq!(vm.reg(out), Value::I(2));
    }

    #[test]
    fn store_load_ordering() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let words = vec![
            Word {
                ops: vec![Op::new(
                    Opcode::Store,
                    None,
                    vec![Imm::I(3).into(), Imm::F(7.5).into()],
                )],
            },
            Word {
                ops: vec![Op::new(Opcode::Load, Some(x), vec![Imm::I(3).into()])],
            },
        ];
        let p = one_block_program(regs, words);
        let mut vm = Vm::new(&p, &m);
        vm.run().unwrap();
        assert_eq!(vm.reg(x), Value::F(7.5));
    }

    #[test]
    fn same_cycle_load_store_reads_old() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let words = vec![Word {
            ops: vec![
                Op::new(Opcode::Load, Some(x), vec![Imm::I(0).into()]),
                Op::new(Opcode::Store, None, vec![Imm::I(0).into(), Imm::F(9.0).into()]),
            ],
        }];
        let p = one_block_program(regs, words);
        let mut vm = Vm::new(&p, &m);
        vm.mem[0] = 4.0;
        vm.run().unwrap();
        assert_eq!(vm.reg(x), Value::F(4.0), "load sees pre-store value");
        assert_eq!(vm.mem[0], 9.0);
    }

    #[test]
    fn double_write_detected() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let a = regs.alloc(Type::I32);
        let words = vec![Word {
            ops: vec![
                Op::new(Opcode::Const, Some(a), vec![Imm::I(1).into()]),
                Op::new(Opcode::Const, Some(a), vec![Imm::I(2).into()]),
            ],
        }];
        let p = one_block_program(regs, words);
        let mut vm = Vm::new(&p, &m);
        assert!(matches!(vm.run(), Err(VmError::DoubleWrite { .. })));
    }

    #[test]
    fn fuel_exhaustion() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let n = regs.alloc(Type::I32);
        let mut init = Block::new("init");
        init.words.push(Word {
            ops: vec![Op::new(Opcode::Const, Some(n), vec![Imm::I(1000000).into()])],
        });
        init.term = Terminator::Fall(BlockId(1));
        let mut body = Block::new("body");
        body.words.push(Word::empty());
        body.term = Terminator::CountedLoop {
            counter: n,
            dec: 1,
            back: BlockId(1),
            exit: BlockId(1),
        };
        let p = VliwProgram {
            name: "t".into(),
            regs,
            arrays: vec![],
            mem_size: 0,
            blocks: vec![init, body],
            entry: BlockId(0),
        };
        let mut vm = Vm::new(&p, &m).with_fuel(100);
        assert_eq!(vm.run(), Err(VmError::OutOfFuel));
    }

    #[test]
    fn queues_work() {
        let m = test_machine();
        let mut regs = RegTable::new();
        let x = regs.alloc(Type::F32);
        let words = vec![
            Word {
                ops: vec![Op::new(Opcode::QPop, Some(x), vec![Imm::I(0).into()])],
            },
            Word {
                ops: vec![Op::new(Opcode::QPush, None, vec![x.into()])],
            },
        ];
        let p = one_block_program(regs, words);
        let mut vm = Vm::new(&p, &m);
        vm.input.push_back(6.25);
        vm.run().unwrap();
        assert_eq!(vm.output, vec![6.25]);
    }

    #[test]
    fn mflops_computation() {
        let s = VmStats {
            cycles: 100,
            ops: 150,
            flops: 50,
        };
        // 0.5 flops/cycle at 10 MHz = 5 MFLOPS.
        assert!((s.mflops(10.0) - 5.0).abs() < 1e-9);
    }
}
