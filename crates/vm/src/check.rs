//! End-to-end equivalence checking.
//!
//! Runs a source program through the sequential reference interpreter and
//! its compiled VLIW code through the cycle-accurate simulator with the
//! same initial memory and input queue, then compares final memory and
//! output queues bit for bit. Floating-point operations are deterministic
//! functions of their inputs and the compiler never reassociates, so
//! agreement is exact — any mismatch is a compiler bug.
//!
//! Every checked run first passes the compiled code through the *static*
//! legality verifier ([`swp::verify`]): a schedule can be dynamically
//! correct on one input yet structurally illegal (an oversubscribed unit,
//! a dependence honored only by luck of the data). The two layers together
//! form the oracle: static legality, then dynamic equivalence.

use ir::{Interp, Program, Value, VReg};
use machine::MachineDescription;
use swp::{CompileOptions, CompiledProgram};

use crate::exec::{Vm, VmError, VmStats};

/// The outcome of one checked run.
#[derive(Debug, Clone)]
pub struct CheckedRun {
    /// Simulator statistics (cycles, ops, flops).
    pub vm_stats: VmStats,
    /// Reference interpreter statistics.
    pub ref_stats: ir::ExecStats,
    /// Final memory (identical between the two by construction).
    pub mem: Vec<f32>,
    /// Output queue, channel X.
    pub output: Vec<f32>,
    /// Output queue, channel Y.
    pub output_y: Vec<f32>,
}

/// Why a checked run failed.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// The reference interpreter faulted (bad test program).
    Reference(ir::InterpError),
    /// The simulator faulted (compiler or simulator bug).
    Vm(VmError),
    /// The compiler rejected the program.
    Compile(swp::CompileError),
    /// The static verifier found the compiled schedule illegal (compiler
    /// bug), before either execution ran.
    Illegal(Vec<swp::verify::Violation>),
    /// The two executions disagree (compiler bug).
    Mismatch(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Reference(e) => write!(f, "reference interpreter fault: {e}"),
            CheckError::Vm(e) => write!(f, "simulator fault: {e}"),
            CheckError::Compile(e) => write!(f, "{e}"),
            CheckError::Illegal(vs) => {
                write!(f, "illegal schedule ({} violation(s))", vs.len())?;
                for v in vs {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            CheckError::Mismatch(m) => write!(f, "pipelined/reference mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Initial machine state for a run.
#[derive(Debug, Clone, Default)]
pub struct RunInput {
    /// Initial data-memory contents (zero-extended to the program's size).
    pub mem: Vec<f32>,
    /// Input queue contents, channel X.
    pub input: Vec<f32>,
    /// Input queue contents, channel Y.
    pub input_y: Vec<f32>,
    /// Pre-set registers (e.g. runtime trip counts).
    pub regs: Vec<(VReg, Value)>,
}

/// Compiles `program` with `opts`, runs both executions on `input`, and
/// compares the results.
///
/// # Errors
///
/// Any fault in either execution, or any disagreement between them.
pub fn run_checked(
    program: &Program,
    mach: &MachineDescription,
    opts: &CompileOptions,
    input: &RunInput,
) -> Result<CheckedRun, CheckError> {
    let compiled = swp::compile(program, mach, opts).map_err(CheckError::Compile)?;
    run_checked_compiled(program, &compiled, mach, input)
}

/// As [`run_checked`], for an already compiled program.
pub fn run_checked_compiled(
    program: &Program,
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    input: &RunInput,
) -> Result<CheckedRun, CheckError> {
    // Static legality first: a schedule must be provably legal before its
    // dynamic behavior means anything.
    let violations = swp::verify::verify_compiled(compiled, mach);
    if !violations.is_empty() {
        return Err(CheckError::Illegal(violations));
    }

    // Reference execution.
    let mut reference = Interp::new(program);
    for (i, v) in input.mem.iter().enumerate() {
        if i < reference.mem.len() {
            reference.mem[i] = *v;
        }
    }
    reference.input.extend(input.input.iter().copied());
    reference.input_y.extend(input.input_y.iter().copied());
    for &(r, v) in &input.regs {
        reference.set_reg(r, v);
    }
    reference.run(program).map_err(CheckError::Reference)?;

    // Simulated execution.
    let mut vm = Vm::new(&compiled.vliw, mach);
    for (i, v) in input.mem.iter().enumerate() {
        if i < vm.mem.len() {
            vm.mem[i] = *v;
        }
    }
    vm.input.extend(input.input.iter().copied());
    vm.input_y.extend(input.input_y.iter().copied());
    for &(r, v) in &input.regs {
        vm.set_reg(r, v);
    }
    vm.run().map_err(CheckError::Vm)?;

    // Compare.
    if reference.mem.len() != vm.mem.len() {
        return Err(CheckError::Mismatch(format!(
            "memory sizes differ: {} vs {}",
            reference.mem.len(),
            vm.mem.len()
        )));
    }
    for (i, (a, b)) in reference.mem.iter().zip(&vm.mem).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(CheckError::Mismatch(format!(
                "memory[{i}]: reference {a}, simulator {b}"
            )));
        }
    }
    if reference.output.len() != vm.output.len() {
        return Err(CheckError::Mismatch(format!(
            "output queue lengths differ: {} vs {}",
            reference.output.len(),
            vm.output.len()
        )));
    }
    for (i, (a, b)) in reference.output.iter().zip(&vm.output).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(CheckError::Mismatch(format!(
                "output[{i}]: reference {a}, simulator {b}"
            )));
        }
    }
    if reference.output_y != vm.output_y {
        return Err(CheckError::Mismatch(format!(
            "Y output queues differ: {} vs {} values",
            reference.output_y.len(),
            vm.output_y.len()
        )));
    }
    Ok(CheckedRun {
        vm_stats: vm.stats,
        ref_stats: reference.stats,
        mem: vm.mem,
        output: vm.output,
        output_y: vm.output_y,
    })
}

/// Runs only the simulator (no reference check) and returns its stats —
/// used by the benchmark harness once correctness is established.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn run_vm(
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    input: &RunInput,
) -> Result<(VmStats, Vec<f32>, Vec<f32>), CheckError> {
    let (stats, mem, out, _) = run_vm_full(compiled, mach, input)?;
    Ok((stats, mem, out))
}

/// Result of an unchecked run: statistics, final memory, X output, Y
/// output.
pub type VmRun = (VmStats, Vec<f32>, Vec<f32>, Vec<f32>);

/// As [`run_vm`], also returning the Y output queue.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn run_vm_full(
    compiled: &CompiledProgram,
    mach: &MachineDescription,
    input: &RunInput,
) -> Result<VmRun, CheckError> {
    let mut vm = Vm::new(&compiled.vliw, mach);
    for (i, v) in input.mem.iter().enumerate() {
        if i < vm.mem.len() {
            vm.mem[i] = *v;
        }
    }
    vm.input.extend(input.input.iter().copied());
    vm.input_y.extend(input.input_y.iter().copied());
    for &(r, v) in &input.regs {
        vm.set_reg(r, v);
    }
    vm.run().map_err(CheckError::Vm)?;
    Ok((vm.stats, vm.mem, vm.output, vm.output_y))
}
