//! Opt-in memory-access tracing over the sequential reference semantics.
//!
//! The dependence auditor needs ground truth: which memory accesses
//! *actually* conflicted at run time, and at what iteration distance. This
//! module executes a source [`Program`] through the reference interpreter
//! while recording, for each targeted loop, every data-memory access as
//! `(site, iteration, address, read/write)`. Sites are numbered in static
//! program order within the loop body (THEN arm before ELSE arm), which is
//! exactly the order the dependence-graph builder visits accesses — so a
//! trace event maps back to a graph node by position.
//!
//! Loops are numbered by a static pre-order walk of the program, matching
//! the `loopN` labels the code generator assigns, so a [`LoopTrace`] lines
//! up with the compiler's `LoopReport`/`LoopArtifacts` for the same loop.
//!
//! Nothing here runs unless explicitly asked for: tracing is a separate
//! entry point ([`trace_memory`]), not a flag on the hot interpreter or
//! simulator paths.

use std::collections::HashMap;

use ir::{Imm, Interp, InterpError, Loop, MemRef, Opcode, Operand, Program, Stmt, TripCount, Value};

use crate::check::RunInput;

/// One recorded data-memory access inside a traced loop activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Static access site within the loop body (program order, THEN arm
    /// before ELSE arm) — the same order the dependence-graph builder
    /// enumerates accesses.
    pub site: u32,
    /// Iteration index within the activation, starting at 0.
    pub iter: u64,
    /// Absolute data-memory word address.
    pub addr: u32,
    /// True for `Store`, false for `Load`.
    pub store: bool,
}

/// Static description of one access site in a traced loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteInfo {
    /// `Load` or `Store`.
    pub opcode: Opcode,
    /// The access's compile-time memory-reference metadata, if any.
    pub mem: Option<MemRef>,
}

/// The trace of one loop: its static sites plus one event stream per
/// activation (a loop nested under an outer loop activates once per outer
/// iteration; iteration distances are only meaningful within an
/// activation).
#[derive(Debug, Clone)]
pub struct LoopTrace {
    /// Pre-order loop number; matches the code generator's `loopN` label.
    pub loop_index: u32,
    /// Access sites in static program order.
    pub sites: Vec<SiteInfo>,
    /// One event stream per dynamic activation, in execution order.
    pub activations: Vec<Vec<MemEvent>>,
}

/// All traced loops of one program run.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Traces in ascending `loop_index` order.
    pub loops: Vec<LoopTrace>,
}

impl TraceReport {
    /// Finds the trace for a loop by its pre-order index.
    pub fn for_loop(&self, loop_index: u32) -> Option<&LoopTrace> {
        self.loops.iter().find(|t| t.loop_index == loop_index)
    }
}

/// One dependence observed at run time: site `from_site` touched an
/// address in some iteration `i`, and site `to_site` touched the same
/// address in iteration `i + distance` (with at least one of the two a
/// store). `distance >= 0` always: events are paired in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObservedDep {
    /// The earlier access site.
    pub from_site: u32,
    /// The later access site.
    pub to_site: u32,
    /// Minimum iteration distance at which the pair was observed.
    pub distance: u64,
}

/// Runs `program` on `input` under the reference semantics, tracing the
/// loops whose pre-order indices appear in `targets`. Loops containing
/// nested loops are never traced (the pipeline scheduler does not touch
/// them either); requesting one simply yields no trace.
///
/// # Errors
///
/// Propagates the first dynamic error, exactly as a plain reference run
/// would.
pub fn trace_memory(
    program: &Program,
    input: &RunInput,
    targets: &[u32],
) -> Result<TraceReport, InterpError> {
    let mut interp = Interp::new(program);
    for (i, v) in input.mem.iter().enumerate() {
        if i < interp.mem.len() {
            interp.mem[i] = *v;
        }
    }
    interp.input.extend(input.input.iter().copied());
    interp.input_y.extend(input.input_y.iter().copied());
    for &(r, v) in &input.regs {
        interp.set_reg(r, v);
    }

    let mut ids = HashMap::new();
    let mut next = 0u32;
    number_loops(&program.body, &mut next, &mut ids);

    let mut tracer = Tracer {
        interp,
        ids,
        targets,
        traces: Vec::new(),
    };
    tracer.exec_stmts(&program.body)?;
    tracer.traces.sort_by_key(|t| t.loop_index);
    Ok(TraceReport {
        loops: tracer.traces,
    })
}

/// Derives the observed dependence set of one traced loop: for every
/// ordered pair of sites that touched the same address with at least one
/// store between them, the *minimum* iteration distance seen across all
/// activations. Covering the minimum distance covers every larger one, so
/// this is the complete obligation set for the static graph.
pub fn observed_deps(trace: &LoopTrace) -> Vec<ObservedDep> {
    use std::collections::BTreeMap;
    // (from_site, to_site) -> min distance.
    let mut mins: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut record = |from: u32, to: u32, d: u64| {
        mins.entry((from, to))
            .and_modify(|m| *m = (*m).min(d))
            .or_insert(d);
    };
    for events in &trace.activations {
        // Per-address: the last store and every load since it.
        let mut last_store: HashMap<u32, (u32, u64)> = HashMap::new();
        let mut readers: HashMap<u32, Vec<(u32, u64)>> = HashMap::new();
        for e in events {
            if e.store {
                if let Some(&(s, si)) = last_store.get(&e.addr) {
                    record(s, e.site, e.iter - si); // output
                }
                for &(r, ri) in readers.get(&e.addr).map_or(&[][..], |v| v) {
                    record(r, e.site, e.iter - ri); // anti
                }
                readers.remove(&e.addr);
                last_store.insert(e.addr, (e.site, e.iter));
            } else {
                if let Some(&(s, si)) = last_store.get(&e.addr) {
                    record(s, e.site, e.iter - si); // flow
                }
                readers.entry(e.addr).or_default().push((e.site, e.iter));
            }
        }
    }
    mins.into_iter()
        .map(|((from_site, to_site), distance)| ObservedDep {
            from_site,
            to_site,
            distance,
        })
        .collect()
}

/// Numbers every loop in pre-order (THEN arm before ELSE arm), keyed by
/// node identity. This reproduces the code generator's label assignment:
/// the emitter takes a number for every loop it *encounters*, before any
/// early-out, and walks statements in program order.
fn number_loops(stmts: &[Stmt], next: &mut u32, ids: &mut HashMap<usize, u32>) {
    for s in stmts {
        match s {
            Stmt::Op(_) => {}
            Stmt::Loop(l) => {
                ids.insert(loop_key(l), *next);
                *next += 1;
                number_loops(&l.body, next, ids);
            }
            Stmt::If(i) => {
                number_loops(&i.then_body, next, ids);
                number_loops(&i.else_body, next, ids);
            }
        }
    }
}

fn loop_key(l: &Loop) -> usize {
    l as *const Loop as usize
}

/// Collects the access sites of a loop body in static program order.
fn collect_sites(stmts: &[Stmt], out: &mut Vec<SiteInfo>) {
    for s in stmts {
        match s {
            Stmt::Op(op) if op.touches_memory() => out.push(SiteInfo {
                opcode: op.opcode,
                mem: op.mem,
            }),
            Stmt::Op(_) | Stmt::Loop(_) => {}
            Stmt::If(i) => {
                collect_sites(&i.then_body, out);
                collect_sites(&i.else_body, out);
            }
        }
    }
}

/// Number of access sites in a statement subtree (for skipping the
/// non-taken arm of a conditional).
fn count_mem(stmts: &[Stmt]) -> u32 {
    let mut n = 0;
    for s in stmts {
        match s {
            Stmt::Op(op) if op.touches_memory() => n += 1,
            Stmt::Op(_) | Stmt::Loop(_) => {}
            Stmt::If(i) => n += count_mem(&i.then_body) + count_mem(&i.else_body),
        }
    }
    n
}

fn contains_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Op(_) => false,
        Stmt::Loop(_) => true,
        Stmt::If(i) => contains_loop(&i.then_body) || contains_loop(&i.else_body),
    })
}

struct Tracer<'a> {
    interp: Interp,
    ids: HashMap<usize, u32>,
    targets: &'a [u32],
    traces: Vec<LoopTrace>,
}

impl Tracer<'_> {
    fn read_i(&self, r: ir::VReg) -> Result<i64, InterpError> {
        match self.interp.reg(r) {
            Value::Undef => Err(InterpError::UndefRead(r)),
            Value::I(v) => Ok(v as i64),
            other => Err(InterpError::TypeMismatch(format!(
                "expected int, got {other:?}"
            ))),
        }
    }

    fn trip(&self, t: &TripCount) -> Result<i64, InterpError> {
        match t {
            TripCount::Const(n) => Ok(*n as i64),
            TripCount::Reg(r) => self.read_i(*r),
        }
    }

    /// Untraced execution: replicates `Interp::exec_stmts` exactly, except
    /// that a targeted loop switches to traced execution.
    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<(), InterpError> {
        for s in stmts {
            match s {
                Stmt::Op(op) => self.interp.exec_op(op)?,
                Stmt::Loop(l) => self.exec_loop(l)?,
                Stmt::If(i) => {
                    if self.read_i(i.cond)? != 0 {
                        self.exec_stmts(&i.then_body)?;
                    } else {
                        self.exec_stmts(&i.else_body)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn exec_loop(&mut self, l: &Loop) -> Result<(), InterpError> {
        let id = self.ids[&loop_key(l)];
        let n = self.trip(&l.trip)?;
        let traced = self.targets.contains(&id) && !contains_loop(&l.body);
        if !traced {
            for _ in 0..n.max(0) {
                self.exec_stmts(&l.body)?;
            }
            return Ok(());
        }
        let slot = match self.traces.iter().position(|t| t.loop_index == id) {
            Some(i) => i,
            None => {
                let mut sites = Vec::new();
                collect_sites(&l.body, &mut sites);
                self.traces.push(LoopTrace {
                    loop_index: id,
                    sites,
                    activations: Vec::new(),
                });
                self.traces.len() - 1
            }
        };
        let mut events = Vec::new();
        for iter in 0..n.max(0) {
            let mut cursor = 0u32;
            self.exec_traced(&l.body, iter as u64, &mut cursor, &mut events)?;
        }
        self.traces[slot].activations.push(events);
        Ok(())
    }

    /// Traced execution of one iteration of a targeted loop body: every
    /// memory op records an event, and the site cursor is advanced over
    /// the non-taken arm of each conditional so site numbering stays
    /// static.
    fn exec_traced(
        &mut self,
        stmts: &[Stmt],
        iter: u64,
        cursor: &mut u32,
        events: &mut Vec<MemEvent>,
    ) -> Result<(), InterpError> {
        for s in stmts {
            match s {
                Stmt::Op(op) if op.touches_memory() => {
                    let site = *cursor;
                    *cursor += 1;
                    // Resolve the address before executing: if it is not a
                    // well-formed non-negative integer, execute anyway and
                    // let the interpreter raise the real error.
                    let addr = match op.srcs[0] {
                        Operand::Reg(r) => match self.interp.reg(r) {
                            Value::I(a) if a >= 0 => Some(a as u32),
                            _ => None,
                        },
                        Operand::Imm(Imm::I(a)) if a >= 0 => Some(a as u32),
                        Operand::Imm(_) => None,
                    };
                    self.interp.exec_op(op)?;
                    if let Some(addr) = addr {
                        events.push(MemEvent {
                            site,
                            iter,
                            addr,
                            store: op.opcode == Opcode::Store,
                        });
                    }
                }
                Stmt::Op(op) => self.interp.exec_op(op)?,
                // Targeted loops are checked loop-free before tracing.
                Stmt::Loop(l) => self.exec_loop(l)?,
                Stmt::If(i) => {
                    if self.read_i(i.cond)? != 0 {
                        self.exec_traced(&i.then_body, iter, cursor, events)?;
                        *cursor += count_mem(&i.else_body);
                    } else {
                        *cursor += count_mem(&i.then_body);
                        self.exec_traced(&i.else_body, iter, cursor, events)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::ProgramBuilder;

    /// a[i] = a[i-1] * 2 — a flow dependence at distance 1.
    fn recurrence_program() -> Program {
        let mut b = ProgramBuilder::new("rec");
        let a = b.array("a", 16);
        b.for_counted(TripCount::Const(8), |b, i| {
            let x = b.load_elem(a, i.into(), 1, 0);
            let y = b.fmul(x.into(), 2.0f32.into());
            b.store_elem(a, i.into(), 1, 1, y.into());
        });
        b.finish()
    }

    #[test]
    fn trace_records_sites_and_events() {
        let p = recurrence_program();
        let input = RunInput {
            mem: (0..16).map(|i| i as f32).collect(),
            ..Default::default()
        };
        let rep = trace_memory(&p, &input, &[0]).unwrap();
        assert_eq!(rep.loops.len(), 1);
        let t = &rep.loops[0];
        assert_eq!(t.loop_index, 0);
        assert_eq!(t.sites.len(), 2);
        assert_eq!(t.sites[0].opcode, Opcode::Load);
        assert_eq!(t.sites[1].opcode, Opcode::Store);
        assert_eq!(t.activations.len(), 1);
        // 8 iterations x (1 load + 1 store).
        assert_eq!(t.activations[0].len(), 16);
        assert_eq!(
            t.activations[0][0],
            MemEvent {
                site: 0,
                iter: 0,
                addr: 0,
                store: false
            }
        );
    }

    #[test]
    fn observed_deps_find_the_distance_one_flow() {
        let p = recurrence_program();
        let input = RunInput::default();
        let rep = trace_memory(&p, &input, &[0]).unwrap();
        let deps = observed_deps(&rep.loops[0]);
        // store site 1 at a[i+1] feeds load site 0 at a[i] one iteration
        // later: flow at distance 1. The load of a[i] precedes the store
        // to a[i+1] of the previous iteration? No: load i reads a[i],
        // store i writes a[i+1]; load i+1 reads a[i+1] — flow (1 -> 0)
        // distance 1. And store i+1 writes a[i+2] after load... no other
        // same-address pair repeats closer.
        assert!(
            deps.contains(&ObservedDep {
                from_site: 1,
                to_site: 0,
                distance: 1
            }),
            "{deps:?}"
        );
        // No observed output dependence: each address is stored once.
        assert!(deps.iter().all(|d| !(d.from_site == 1 && d.to_site == 1)));
    }

    #[test]
    fn untargeted_loops_produce_no_trace_and_same_memory() {
        let p = recurrence_program();
        let input = RunInput {
            mem: (0..16).map(|i| i as f32).collect(),
            ..Default::default()
        };
        let rep = trace_memory(&p, &input, &[]).unwrap();
        assert!(rep.loops.is_empty());
        // Traced and untraced execution leave identical memory.
        let traced = trace_memory(&p, &input, &[0]).unwrap();
        assert_eq!(traced.loops.len(), 1);
        let mut a = Interp::new(&p);
        for (i, v) in input.mem.iter().enumerate() {
            a.mem[i] = *v;
        }
        a.run(&p).unwrap();
        // Cheap cross-check: same number of stores as the event stream.
        let stores = traced.loops[0].activations[0]
            .iter()
            .filter(|e| e.store)
            .count();
        assert_eq!(stores, 8);
    }

    #[test]
    fn conditional_arms_keep_static_site_numbering() {
        // if (i % 2) store a[i] else store b[i]; then-arm sites come
        // first even when the else arm executes.
        let mut b = ProgramBuilder::new("cond");
        let a = b.array("a", 8);
        let bb = b.array("b", 8);
        b.for_counted(TripCount::Const(4), |b, i| {
            let two = b.iconst(2);
            let r = b.rem(i.into(), two.into());
            let x = b.fconst(1.0);
            b.if_else(
                r,
                |b| b.store_elem(a, i.into(), 1, 0, x.into()),
                |b| b.store_elem(bb, i.into(), 1, 0, x.into()),
            );
        });
        let p = b.finish();
        let rep = trace_memory(&p, &RunInput::default(), &[0]).unwrap();
        let t = &rep.loops[0];
        assert_eq!(t.sites.len(), 2);
        let ev = &t.activations[0];
        // Even iterations take the else arm (site 1), odd the then arm
        // (site 0).
        assert_eq!(ev[0].site, 1);
        assert_eq!(ev[1].site, 0);
        assert_eq!(ev[2].site, 1);
        assert_eq!(ev[3].site, 0);
    }

    #[test]
    fn nested_activations_are_separate() {
        // Outer loop runs the inner loop twice; each activation gets its
        // own event stream and distances never cross activations.
        let mut b = ProgramBuilder::new("nest");
        let a = b.array("a", 8);
        b.for_counted(TripCount::Const(2), |b, _| {
            b.for_counted(TripCount::Const(4), |b, i| {
                let x = b.load_elem(a, i.into(), 1, 0);
                let y = b.fadd(x.into(), 1.0f32.into());
                b.store_elem(a, i.into(), 1, 0, y.into());
            });
        });
        let p = b.finish();
        let rep = trace_memory(&p, &RunInput::default(), &[1]).unwrap();
        let t = &rep.loops[0];
        assert_eq!(t.loop_index, 1);
        assert_eq!(t.activations.len(), 2);
        let deps = observed_deps(t);
        // Within an activation every address is loaded then stored once:
        // the only dependence is the same-iteration anti (0 -> 1) at
        // distance 0.
        assert_eq!(
            deps,
            vec![ObservedDep {
                from_site: 0,
                to_site: 1,
                distance: 0
            }]
        );
    }
}
